#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "retra/db/database.hpp"
#include "retra/db/db_io.hpp"
#include "retra/db/db_stats.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"

namespace retra::db {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Database, PushAndQuery) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {1, -1, 0});
  EXPECT_EQ(database.num_levels(), 2);
  EXPECT_TRUE(database.has_level(1));
  EXPECT_FALSE(database.has_level(2));
  EXPECT_EQ(database.value(1, 0), 1);
  EXPECT_EQ(database.value(1, 1), -1);
  EXPECT_EQ(database.total_positions(), 4u);
}

TEST(Database, EqualityIsDeep) {
  Database a, b;
  a.push_level(0, {1});
  b.push_level(0, {1});
  EXPECT_EQ(a, b);
  Database c;
  c.push_level(0, {2});
  EXPECT_NE(a, c);
}

TEST(DbIo, RoundTripNarrowValues) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {5, -5, 0, 127, -128});
  const std::string path = temp_path("retra_narrow.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, RoundTripWideValues) {
  Database database;
  database.push_level(0, {1000, -1000, 0});
  const std::string path = temp_path("retra_wide.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, DetectsCorruption) {
  Database database;
  database.push_level(0, {7, -7, 7, -7});
  const std::string path = temp_path("retra_corrupt.db");
  save(database, path);
  {
    // Flip one payload byte.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(24);
    char byte;
    file.seekg(24);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(24);
    file.write(&byte, 1);
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  std::remove(path.c_str());
}

TEST(DbIo, RejectsMissingFile) {
  const LoadResult loaded = load(temp_path("retra_nonexistent.db"));
  EXPECT_FALSE(loaded.ok);
}

TEST(DbIo, RejectsBadMagic) {
  const std::string path = temp_path("retra_badmagic.db");
  {
    std::ofstream file(path, std::ios::binary);
    file << "NOTADB00garbage";
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DbIo, ChecksumIsStable) {
  const char data[] = "retrograde";
  EXPECT_EQ(fnv1a(data, 10), fnv1a(data, 10));
  EXPECT_NE(fnv1a(data, 10), fnv1a(data, 9));
}

TEST(DbStats, CountsSigns) {
  Database database;
  database.push_level(0, {2, 0, 0, -1, 3});
  const LevelStats stats = level_stats(database, 0);
  EXPECT_EQ(stats.positions, 5u);
  EXPECT_EQ(stats.wins, 2u);
  EXPECT_EQ(stats.draws, 2u);
  EXPECT_EQ(stats.losses, 1u);
  EXPECT_EQ(stats.min_value, -1);
  EXPECT_EQ(stats.max_value, 3);
  EXPECT_DOUBLE_EQ(stats.mean_value, 0.8);
}

TEST(DbStats, HistogramMatchesStats) {
  Database database;
  database.push_level(0, {2, 0, 0, -1, 3});
  const auto histogram = level_histogram(database, 0, 3);
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.positive(), 2u);
  EXPECT_EQ(histogram.zero(), 2u);
  EXPECT_EQ(histogram.negative(), 1u);
  EXPECT_EQ(histogram.count_at(3), 1u);
}

TEST(DbIo, PackedRoundTripAllWidths) {
  // One level per pack width: zero span and span 7 take 4 bits, span 200
  // takes 8, a full int16 span takes 16.
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {3, 4, 5, 6, 7, 8, 9, 10});
  database.push_level(2, {-100, 100, 0});
  database.push_level(3, {-3000, 3000, 12});
  const std::string path = temp_path("retra_packed.db");
  SaveOptions options;
  options.pack = true;
  save(database, path, options);

  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  EXPECT_EQ(index.version, 2);
  ASSERT_EQ(index.levels.size(), 4u);
  EXPECT_EQ(index.levels[0].bits, 4);
  EXPECT_EQ(index.levels[1].bits, 4);
  EXPECT_EQ(index.levels[2].bits, 8);
  EXPECT_EQ(index.levels[3].bits, 16);
  EXPECT_EQ(index.levels[1].offset, 3);

  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, PackedDetectsCorruption) {
  Database database;
  database.push_level(0, {7, -7, 7, -7, 0, 3});
  const std::string path = temp_path("retra_packed_corrupt.db");
  SaveOptions options;
  options.pack = true;
  save(database, path, options);
  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  {
    // Flip the first payload byte of level 0.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    const auto at =
        static_cast<std::streamoff>(index.levels[0].payload_offset);
    char byte;
    file.seekg(at);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(at);
    file.write(&byte, 1);
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("checksum"), std::string::npos)
      << loaded.error;
  std::remove(path.c_str());
}

TEST(DbIo, PackedRejectsTruncation) {
  Database database;
  database.push_level(0, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::string path = temp_path("retra_packed_trunc.db");
  SaveOptions options;
  options.pack = true;
  save(database, path, options);
  // Cut into the trailing checksum: the level's payload+checksum no
  // longer fit in the file, which scan() diagnoses structurally.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);
  const FileIndex index = scan(path);
  EXPECT_FALSE(index.ok);
  EXPECT_NE(index.error.find("truncated"), std::string::npos) << index.error;
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  std::remove(path.c_str());
}

TEST(DbIo, ReadLevelExpandsEachLevel) {
  // scan() + read_level() on both formats hand back exactly the values
  // that save() was given, level by level.
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {9, -9, 0, 4});
  for (const bool pack : {false, true}) {
    const std::string path = temp_path("retra_readlevel.db");
    SaveOptions options;
    options.pack = pack;
    save(database, path, options);
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    const FileIndex index = scan(file);
    ASSERT_TRUE(index.ok) << index.error;
    ASSERT_EQ(index.levels.size(), 2u);
    for (int level = 0; level < 2; ++level) {
      const LevelReadResult read = read_level(
          file, index.levels[static_cast<std::size_t>(level)]);
      ASSERT_TRUE(read.ok) << read.error;
      EXPECT_EQ(read.level.expand(), database.level(level))
          << "pack=" << pack;
    }
    std::fclose(file);
    std::remove(path.c_str());
  }
}

TEST(DbIo, AwariDatabaseSurvivesPackedRoundTrip) {
  const auto database = ra::build_database(game::AwariFamily{}, 4);
  const std::string path = temp_path("retra_awari_packed.db");
  SaveOptions options;
  options.pack = true;
  save(database, path, options);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, AwariDatabaseSurvivesRoundTrip) {
  const auto database = ra::build_database(game::AwariFamily{}, 4);
  const std::string path = temp_path("retra_awari.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace retra::db

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "retra/db/database.hpp"
#include "retra/db/db_io.hpp"
#include "retra/db/db_stats.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"

namespace retra::db {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Database, PushAndQuery) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {1, -1, 0});
  EXPECT_EQ(database.num_levels(), 2);
  EXPECT_TRUE(database.has_level(1));
  EXPECT_FALSE(database.has_level(2));
  EXPECT_EQ(database.value(1, 0), 1);
  EXPECT_EQ(database.value(1, 1), -1);
  EXPECT_EQ(database.total_positions(), 4u);
}

TEST(Database, EqualityIsDeep) {
  Database a, b;
  a.push_level(0, {1});
  b.push_level(0, {1});
  EXPECT_EQ(a, b);
  Database c;
  c.push_level(0, {2});
  EXPECT_NE(a, c);
}

TEST(DbIo, RoundTripNarrowValues) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {5, -5, 0, 127, -128});
  const std::string path = temp_path("retra_narrow.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, RoundTripWideValues) {
  Database database;
  database.push_level(0, {1000, -1000, 0});
  const std::string path = temp_path("retra_wide.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, DetectsCorruption) {
  Database database;
  database.push_level(0, {7, -7, 7, -7});
  const std::string path = temp_path("retra_corrupt.db");
  save(database, path);
  {
    // Flip one payload byte.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(24);
    char byte;
    file.seekg(24);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(24);
    file.write(&byte, 1);
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  std::remove(path.c_str());
}

TEST(DbIo, RejectsMissingFile) {
  const LoadResult loaded = load(temp_path("retra_nonexistent.db"));
  EXPECT_FALSE(loaded.ok);
}

TEST(DbIo, RejectsBadMagic) {
  const std::string path = temp_path("retra_badmagic.db");
  {
    std::ofstream file(path, std::ios::binary);
    file << "NOTADB00garbage";
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DbIo, ChecksumIsStable) {
  const char data[] = "retrograde";
  EXPECT_EQ(fnv1a(data, 10), fnv1a(data, 10));
  EXPECT_NE(fnv1a(data, 10), fnv1a(data, 9));
}

TEST(DbStats, CountsSigns) {
  Database database;
  database.push_level(0, {2, 0, 0, -1, 3});
  const LevelStats stats = level_stats(database, 0);
  EXPECT_EQ(stats.positions, 5u);
  EXPECT_EQ(stats.wins, 2u);
  EXPECT_EQ(stats.draws, 2u);
  EXPECT_EQ(stats.losses, 1u);
  EXPECT_EQ(stats.min_value, -1);
  EXPECT_EQ(stats.max_value, 3);
  EXPECT_DOUBLE_EQ(stats.mean_value, 0.8);
}

TEST(DbStats, HistogramMatchesStats) {
  Database database;
  database.push_level(0, {2, 0, 0, -1, 3});
  const auto histogram = level_histogram(database, 0, 3);
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.positive(), 2u);
  EXPECT_EQ(histogram.zero(), 2u);
  EXPECT_EQ(histogram.negative(), 1u);
  EXPECT_EQ(histogram.count_at(3), 1u);
}

TEST(DbIo, AwariDatabaseSurvivesRoundTrip) {
  const auto database = ra::build_database(game::AwariFamily{}, 4);
  const std::string path = temp_path("retra_awari.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace retra::db

// exec::WorkerPool and the deterministic chunk decomposition.
//
// The engines' bit-identity guarantee rests on two properties tested
// here: chunk_range depends only on (total, chunks, chunk), and
// WorkerPool::run executes every slot exactly once with a proper join
// (worker writes visible to the caller afterwards), surviving exceptions
// and reuse.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "retra/exec/worker_pool.hpp"

namespace retra::exec {
namespace {

TEST(ChunkRange, CoversTheRangeExactlyInOrder) {
  const std::uint64_t totals[] = {0, 1, 7, 64, 1000, 1001, 123457};
  const unsigned chunk_counts[] = {1, 2, 3, 8, 16, 100};
  for (const std::uint64_t total : totals) {
    for (const unsigned chunks : chunk_counts) {
      std::uint64_t next_begin = 0;
      for (unsigned c = 0; c < chunks; ++c) {
        const ChunkRange range = chunk_range(total, chunks, c);
        EXPECT_EQ(range.begin, next_begin);
        EXPECT_LE(range.begin, range.end);
        next_begin = range.end;
      }
      EXPECT_EQ(next_begin, total);
    }
  }
}

TEST(ChunkRange, BalancedToWithinOneElement) {
  for (const unsigned chunks : {2u, 3u, 7u, 16u}) {
    std::uint64_t smallest = UINT64_MAX;
    std::uint64_t largest = 0;
    for (unsigned c = 0; c < chunks; ++c) {
      const ChunkRange range = chunk_range(1001, chunks, c);
      smallest = range.size() < smallest ? range.size() : smallest;
      largest = range.size() > largest ? range.size() : largest;
    }
    EXPECT_LE(largest - smallest, 1u);
  }
}

TEST(ChunkRange, MoreChunksThanElementsLeavesTrailersEmpty) {
  unsigned nonempty = 0;
  for (unsigned c = 0; c < 8; ++c) {
    const ChunkRange range = chunk_range(3, 8, c);
    if (!range.empty()) {
      EXPECT_EQ(range.size(), 1u);
      ++nonempty;
    }
  }
  EXPECT_EQ(nonempty, 3u);
}

TEST(WorkerPool, RunsEverySlotExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned slot) { hits[slot].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(WorkerPool, SingleSlotPoolRunsInlineOnTheCaller) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::thread::id ran_on;
  pool.run([&](unsigned slot) {
    EXPECT_EQ(slot, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(WorkerPool, JoinMakesWorkerWritesVisible) {
  // No atomics on the data: the run() join must order these writes.
  WorkerPool pool(8);
  std::vector<std::uint64_t> data(8 * 1024, 0);
  pool.run([&](unsigned slot) {
    const ChunkRange range = chunk_range(data.size(), 8, slot);
    for (std::uint64_t i = range.begin; i < range.end; ++i) data[i] = i + 1;
  });
  for (std::uint64_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], i + 1);
  }
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  WorkerPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 600u);
}

TEST(WorkerPool, PropagatesWorkerExceptionAndStaysUsable) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run([](unsigned slot) {
                 if (slot == 2) throw std::runtime_error("worker");
               }),
               std::runtime_error);
  // A caller-slot exception still joins the workers first.
  EXPECT_THROW(pool.run([](unsigned slot) {
                 if (slot == 0) throw std::runtime_error("caller");
               }),
               std::runtime_error);
  std::atomic<unsigned> count{0};
  pool.run([&](unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3u);
}

}  // namespace
}  // namespace retra::exec

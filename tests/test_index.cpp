#include <gtest/gtest.h>

#include <map>

#include "retra/index/binomial.hpp"
#include "retra/index/board_index.hpp"

namespace retra::idx {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(12, 12), 1u);
  EXPECT_EQ(binomial(23, 11), 1352078u);
  EXPECT_EQ(binomial(24, 11), 2496144u);
  EXPECT_EQ(binomial(60, 12), 1399358844975u);
}

TEST(Binomial, OutsideTriangleIsZero) {
  EXPECT_EQ(binomial(-1, 0), 0u);
  EXPECT_EQ(binomial(3, -1), 0u);
  EXPECT_EQ(binomial(3, 4), 0u);
}

TEST(Binomial, PascalIdentity) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 1; k <= 12; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(LevelSize, KnownValues) {
  EXPECT_EQ(level_size(0), 1u);
  EXPECT_EQ(level_size(1), 12u);
  EXPECT_EQ(level_size(2), 78u);
  EXPECT_EQ(level_size(12), 1352078u);  // C(23, 11)
  EXPECT_EQ(level_size(13), 2496144u);  // C(24, 11)
}

TEST(LevelSize, CumulativeIsHockeyStick) {
  std::uint64_t running = 0;
  for (int n = 0; n <= 24; ++n) {
    running += level_size(n);
    EXPECT_EQ(cumulative_size(n), running) << "level " << n;
  }
}

TEST(BoardIndex, FirstBoardHasRankZero) {
  for (int n = 0; n <= 10; ++n) {
    const Board first = first_board(n);
    EXPECT_EQ(stones_on(first), n);
    EXPECT_EQ(rank(first), 0u);
  }
}

TEST(BoardIndex, AllStonesInPitZeroIsLastRank) {
  for (int n = 1; n <= 10; ++n) {
    Board board{};
    board[0] = static_cast<std::uint8_t>(n);
    EXPECT_EQ(rank(board), level_size(n) - 1) << "level " << n;
  }
}

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, UnrankThenRankIsIdentity) {
  const int level = GetParam();
  const std::uint64_t size = level_size(level);
  for (std::uint64_t i = 0; i < size; ++i) {
    const Board board = unrank(level, i);
    ASSERT_EQ(stones_on(board), level);
    ASSERT_EQ(rank(board), i) << "level " << level << " index " << i;
  }
}

TEST_P(RoundTrip, NextBoardEnumeratesInRankOrder) {
  const int level = GetParam();
  const std::uint64_t size = level_size(level);
  Board board = first_board(level);
  for (std::uint64_t i = 0; i < size; ++i) {
    ASSERT_EQ(board, unrank(level, i)) << "level " << level << " step " << i;
    const bool more = next_board(board);
    ASSERT_EQ(more, i + 1 < size);
  }
  // After wrapping, the board is back at the level's first element.
  EXPECT_EQ(board, first_board(level));
}

TEST_P(RoundTrip, RanksAreDenseAndUnique) {
  const int level = GetParam();
  std::map<std::uint64_t, int> seen;
  for_each_board(level, [&](const Board& board, Index i) {
    ASSERT_EQ(rank(board), i);
    ++seen[i];
  });
  ASSERT_EQ(seen.size(), level_size(level));
  EXPECT_EQ(seen.begin()->first, 0u);
  EXPECT_EQ(seen.rbegin()->first, level_size(level) - 1);
}

INSTANTIATE_TEST_SUITE_P(Levels, RoundTrip, ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(BoardIndex, SpotCheckLargeLevel) {
  // Round-trip sampled indices of a level too big to enumerate in a test.
  const int level = 16;
  const std::uint64_t size = level_size(level);
  for (std::uint64_t i = 0; i < size; i += size / 1000 + 1) {
    const Board board = unrank(level, i);
    ASSERT_EQ(stones_on(board), level);
    ASSERT_EQ(rank(board), i);
  }
}

TEST(BoardIndex, LexicographicOrderOnPitZero) {
  // Boards are ranked lexicographically: raising pit 0 raises the rank.
  Board a{}, b{};
  a[0] = 1;
  a[11] = 3;
  b[0] = 2;
  b[11] = 2;
  EXPECT_LT(rank(a), rank(b));
}

}  // namespace
}  // namespace retra::idx

// The retra-net-v1 codec: wire layout, round trips, and the
// malformed-frame fuzz loop.
//
// The codec is pure (no sockets), so these tests pin the byte format
// down exactly — header field offsets, little-endian order, payload
// shapes — and then hammer FrameBuffer and the payload decoders with
// arbitrary and mutated bytes: every outcome must be a typed ErrorCode,
// never a crash, a hang, or an unbounded allocation.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "retra/net/protocol.hpp"
#include "retra/support/rng.hpp"

namespace retra::net {
namespace {

// ---- wire-layout lint: the constants below ARE the protocol; changing
// any of them is a wire break and must be deliberate.
static_assert(FrameHeader::kWireSize == 16);
static_assert(kMagic == 0x314E5452u);  // "RTN1" little-endian
static_assert(kVersion == 1);
static_assert(kMaxPayloadBytes == (1u << 20));
static_assert(kMaxBatchLookups == (1u << 16));
static_assert(QueryRequest::kPayloadBytes == 13);
static_assert(StatsReply::kCounterCount == 13);
static_assert(static_cast<int>(Op::kPing) == 1);
static_assert(static_cast<int>(Op::kQuery) == 2);
static_assert(static_cast<int>(Op::kBatchQuery) == 3);
static_assert(static_cast<int>(Op::kStats) == 4);
static_assert(static_cast<int>(Op::kPong) == 65);
static_assert(static_cast<int>(Op::kValue) == 66);
static_assert(static_cast<int>(Op::kBatchValues) == 67);
static_assert(static_cast<int>(Op::kStatsReply) == 68);
static_assert(static_cast<int>(Op::kError) == 69);
static_assert(static_cast<int>(ErrorCode::kBusy) == 8);
static_assert(static_cast<int>(ErrorCode::kOversizedFrame) == 9);
static_assert(is_request(Op::kQuery) && !is_response(Op::kQuery));
static_assert(is_response(Op::kError) && !is_request(Op::kError));

/// Runs one complete frame through a FrameBuffer and returns it.
Frame decode_one(const std::vector<std::byte>& bytes) {
  FrameBuffer buffer;
  buffer.append(bytes.data(), bytes.size());
  Frame frame;
  ErrorCode error = ErrorCode::kNone;
  EXPECT_EQ(buffer.next(frame, error), FrameBuffer::Next::kFrame)
      << error_name(error);
  EXPECT_EQ(buffer.buffered(), 0u);
  return frame;
}

TEST(NetProtocol, HeaderBytesAreLittleEndianAtFixedOffsets) {
  FrameHeader header;
  header.op = static_cast<std::uint8_t>(Op::kError);
  header.code = static_cast<std::uint16_t>(ErrorCode::kBusy);
  header.request_id = 0x04030201u;
  header.payload_bytes = 0x0A0B0C0Du;
  std::byte bytes[FrameHeader::kWireSize];
  header.encode(bytes);
  const unsigned char expected[16] = {
      0x52, 0x54, 0x4E, 0x31,  // "RTN1"
      1,                       // version
      69,                      // op = ERROR
      8,    0,                 // code = BUSY, little-endian u16
      0x01, 0x02, 0x03, 0x04,  // request_id
      0x0D, 0x0C, 0x0B, 0x0A,  // payload_bytes
  };
  EXPECT_EQ(std::memcmp(bytes, expected, sizeof expected), 0);

  msg::WireReader reader(bytes);
  const FrameHeader back = FrameHeader::decode(reader);
  EXPECT_EQ(back.magic, kMagic);
  EXPECT_EQ(back.version, kVersion);
  EXPECT_EQ(back.op, header.op);
  EXPECT_EQ(back.code, header.code);
  EXPECT_EQ(back.request_id, header.request_id);
  EXPECT_EQ(back.payload_bytes, header.payload_bytes);
}

TEST(NetProtocol, PingAndPongRoundTrip) {
  const Frame ping = decode_one(encode_ping(7));
  EXPECT_EQ(ping.op(), Op::kPing);
  EXPECT_EQ(ping.header.request_id, 7u);
  EXPECT_TRUE(ping.payload.empty());
  const Frame pong = decode_one(encode_pong(7));
  EXPECT_EQ(pong.op(), Op::kPong);
  EXPECT_TRUE(pong.payload.empty());
}

TEST(NetProtocol, QueryRoundTripsBothAddressingModes) {
  const Frame by_index = decode_one(encode_query(3, 5, 123456789ull));
  ASSERT_EQ(by_index.op(), Op::kQuery);
  ASSERT_EQ(by_index.payload.size(), QueryRequest::kPayloadBytes);
  QueryRequest query;
  ASSERT_EQ(decode_query(by_index.payload, query), ErrorCode::kNone);
  EXPECT_EQ(query.mode, QueryRequest::Mode::kLevelIndex);
  EXPECT_EQ(query.level, 5u);
  EXPECT_EQ(query.index, 123456789ull);

  const idx::Board board{1, 2, 0, 0, 1, 0, 0, 1, 0, 2, 0, 1};
  const Frame by_board = decode_one(encode_board_query(4, board));
  ASSERT_EQ(by_board.payload.size(), QueryRequest::kPayloadBytes);
  ASSERT_EQ(decode_query(by_board.payload, query), ErrorCode::kNone);
  EXPECT_EQ(query.mode, QueryRequest::Mode::kBoard);
  EXPECT_EQ(query.board, board);
}

TEST(NetProtocol, BatchQueryAndValuesRoundTrip) {
  const std::vector<idx::Index> indices = {0, 7, 42, 1u << 20};
  const Frame request = decode_one(encode_batch_query(9, 4, indices));
  ASSERT_EQ(request.op(), Op::kBatchQuery);
  BatchQueryRequest batch;
  ASSERT_EQ(decode_batch_query(request.payload, batch), ErrorCode::kNone);
  EXPECT_EQ(batch.level, 4u);
  EXPECT_EQ(batch.indices, indices);

  const std::vector<db::Value> values = {-6, 0, 6, 2};
  const Frame response = decode_one(encode_batch_values(9, values));
  ASSERT_EQ(response.op(), Op::kBatchValues);
  std::vector<db::Value> back;
  ASSERT_EQ(decode_batch_values(response.payload, back), ErrorCode::kNone);
  EXPECT_EQ(back, values);

  db::Value one = 0;
  const Frame single = decode_one(encode_value(2, -5));
  ASSERT_EQ(decode_value(single.payload, one), ErrorCode::kNone);
  EXPECT_EQ(one, -5);
}

TEST(NetProtocol, StatsReplyRoundTripsEveryField) {
  StatsReply stats;
  stats.connections = 1;
  stats.requests = 2;
  stats.queries = 3;
  stats.batch_queries = 4;
  stats.pings = 5;
  stats.stats_ops = 6;
  stats.errors = 7;
  stats.shed = 8;
  stats.hot_hits = 9;
  stats.lookups = 10;
  stats.level_faults = 11;
  stats.level_evictions = 12;
  stats.resident_bytes = 13;
  stats.level_sizes = {1, 12, 78, 364};
  const Frame frame = decode_one(encode_stats_reply(21, stats));
  ASSERT_EQ(frame.op(), Op::kStatsReply);
  StatsReply back;
  ASSERT_EQ(decode_stats_reply(frame.payload, back), ErrorCode::kNone);
  EXPECT_EQ(back.connections, 1u);
  EXPECT_EQ(back.requests, 2u);
  EXPECT_EQ(back.queries, 3u);
  EXPECT_EQ(back.batch_queries, 4u);
  EXPECT_EQ(back.pings, 5u);
  EXPECT_EQ(back.stats_ops, 6u);
  EXPECT_EQ(back.errors, 7u);
  EXPECT_EQ(back.shed, 8u);
  EXPECT_EQ(back.hot_hits, 9u);
  EXPECT_EQ(back.lookups, 10u);
  EXPECT_EQ(back.level_faults, 11u);
  EXPECT_EQ(back.level_evictions, 12u);
  EXPECT_EQ(back.resident_bytes, 13u);
  EXPECT_EQ(back.level_sizes, stats.level_sizes);
}

TEST(NetProtocol, ErrorFrameCarriesTypedCode) {
  const Frame frame = decode_one(encode_error(33, ErrorCode::kBadIndex));
  EXPECT_EQ(frame.op(), Op::kError);
  EXPECT_EQ(static_cast<ErrorCode>(frame.header.code),
            ErrorCode::kBadIndex);
  EXPECT_EQ(frame.header.request_id, 33u);
}

TEST(NetProtocol, FrameBufferReassemblesByteByByte) {
  std::vector<std::byte> stream;
  const auto a = encode_query(1, 2, 3);
  const auto b = encode_ping(2);
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());

  FrameBuffer buffer;
  std::vector<Op> seen;
  for (const std::byte byte : stream) {
    buffer.append(&byte, 1);
    Frame frame;
    ErrorCode error = ErrorCode::kNone;
    while (buffer.next(frame, error) == FrameBuffer::Next::kFrame) {
      seen.push_back(frame.op());
    }
    EXPECT_EQ(error, ErrorCode::kNone);
  }
  EXPECT_EQ(seen, (std::vector<Op>{Op::kQuery, Op::kPing}));
}

TEST(NetProtocol, FrameBufferDiagnosesEachHeaderDefect) {
  const auto diagnose = [](auto mutate) {
    auto bytes = encode_ping(5);
    mutate(bytes);
    FrameBuffer buffer;
    buffer.append(bytes.data(), bytes.size());
    Frame frame;
    ErrorCode error = ErrorCode::kNone;
    FrameHeader bad;
    EXPECT_EQ(buffer.next(frame, error, &bad), FrameBuffer::Next::kError);
    return error;
  };
  EXPECT_EQ(diagnose([](auto& b) { b[0] = std::byte{0}; }),
            ErrorCode::kBadMagic);
  EXPECT_EQ(diagnose([](auto& b) { b[4] = std::byte{9}; }),
            ErrorCode::kBadVersion);
  EXPECT_EQ(diagnose([](auto& b) { b[5] = std::byte{200}; }),
            ErrorCode::kBadOp);
  // Announce a payload beyond the hard ceiling.
  EXPECT_EQ(diagnose([](auto& b) { b[15] = std::byte{0xFF}; }),
            ErrorCode::kOversizedFrame);
}

TEST(NetProtocol, BadHeaderStillYieldsTheRequestIdToEcho) {
  auto bytes = encode_ping(77);
  bytes[5] = std::byte{123};  // unknown op
  FrameBuffer buffer;
  buffer.append(bytes.data(), bytes.size());
  Frame frame;
  ErrorCode error = ErrorCode::kNone;
  FrameHeader bad;
  ASSERT_EQ(buffer.next(frame, error, &bad), FrameBuffer::Next::kError);
  EXPECT_EQ(error, ErrorCode::kBadOp);
  EXPECT_EQ(bad.request_id, 77u);
}

TEST(NetProtocol, DecodersRejectTruncatedAndPaddedPayloads) {
  QueryRequest query;
  BatchQueryRequest batch;
  std::vector<db::Value> values;
  StatsReply stats;
  const auto full = decode_one(encode_query(1, 2, 3)).payload;
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_EQ(decode_query(std::span(full).first(n), query),
              ErrorCode::kMalformed);
  }
  auto padded = full;
  padded.push_back(std::byte{0});
  EXPECT_EQ(decode_query(padded, query), ErrorCode::kMalformed);

  // A batch whose count disagrees with the byte count.
  const std::vector<idx::Index> three = {1, 2, 3};
  auto bad_batch = decode_one(encode_batch_query(1, 2, three)).payload;
  bad_batch.pop_back();
  EXPECT_EQ(decode_batch_query(bad_batch, batch), ErrorCode::kMalformed);

  EXPECT_EQ(decode_value({}, values.emplace_back()), ErrorCode::kMalformed);
  EXPECT_EQ(decode_stats_reply({}, stats), ErrorCode::kMalformed);
}

// ---- the fuzz loop: arbitrary bytes, mutated frames, split deliveries.
// Nothing here asserts specific outcomes beyond "typed error or valid
// frame, bounded buffering, no crash".

/// Drains `buffer` completely, counting frames; stops on error or need-more.
void drain(FrameBuffer& buffer, std::size_t& frames, bool& poisoned) {
  Frame frame;
  ErrorCode error = ErrorCode::kNone;
  for (;;) {
    switch (buffer.next(frame, error)) {
      case FrameBuffer::Next::kFrame:
        ++frames;
        EXPECT_LE(frame.payload.size(), kMaxPayloadBytes);
        continue;
      case FrameBuffer::Next::kNeedMore:
        return;
      case FrameBuffer::Next::kError:
        EXPECT_NE(error, ErrorCode::kNone);
        poisoned = true;
        return;
    }
  }
}

TEST(NetProtocolFuzz, RandomBytesNeverCrashTheFrameBuffer) {
  support::Xoshiro256 rng(0xF00D);
  for (int round = 0; round < 200; ++round) {
    FrameBuffer buffer;
    bool poisoned = false;
    std::size_t frames = 0;
    while (!poisoned) {
      std::byte chunk[64];
      const std::size_t n = 1 + rng.below(sizeof chunk);
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = static_cast<std::byte>(rng.below(256));
      }
      buffer.append(chunk, n);
      drain(buffer, frames, poisoned);
      if (buffer.buffered() > 4 * kMaxPayloadBytes) break;  // unreachable
    }
    // Random 16-byte headers almost never spell RTN1; the stream must
    // poison quickly instead of buffering forever.
    EXPECT_TRUE(poisoned);
    EXPECT_LT(buffer.buffered(), 2 * kMaxPayloadBytes);
  }
}

TEST(NetProtocolFuzz, MutatedValidFramesYieldTypedErrorsOrFrames) {
  support::Xoshiro256 rng(0xBEEF);
  const std::vector<idx::Index> indices = {1, 2, 3, 4, 5};
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> bytes;
    switch (rng.below(4)) {
      case 0: bytes = encode_ping(static_cast<std::uint32_t>(rng())); break;
      case 1: bytes = encode_query(1, 2, rng()); break;
      case 2: bytes = encode_batch_query(2, 3, indices); break;
      default: bytes = encode_stats(4); break;
    }
    // Flip a handful of random bytes, sometimes truncate.
    for (int flips = 0; flips < 3; ++flips) {
      bytes[rng.below(bytes.size())] = static_cast<std::byte>(rng.below(256));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));

    FrameBuffer buffer;
    buffer.append(bytes.data(), bytes.size());
    bool poisoned = false;
    std::size_t frames = 0;
    drain(buffer, frames, poisoned);

    // Whatever survived framing must also decode without crashing.
    Frame frame;
    ErrorCode error = ErrorCode::kNone;
    FrameBuffer replay;
    replay.append(bytes.data(), bytes.size());
    if (replay.next(frame, error) == FrameBuffer::Next::kFrame) {
      QueryRequest query;
      BatchQueryRequest batch;
      StatsReply stats;
      std::vector<db::Value> values;
      db::Value value = 0;
      (void)decode_query(frame.payload, query);
      (void)decode_batch_query(frame.payload, batch);
      (void)decode_value(frame.payload, value);
      (void)decode_batch_values(frame.payload, values);
      (void)decode_stats_reply(frame.payload, stats);
    }
  }
}

TEST(NetProtocolFuzz, BatchDecoderBoundsItsAllocation) {
  // A batch header announcing the maximum count with no bytes behind it
  // must fail by arithmetic, not by allocating the announced amount.
  std::vector<std::byte> payload(8);
  msg::WireWriter w(payload.data());
  w.u32(3);                  // level
  w.u32(kMaxBatchLookups);   // count, but zero index bytes follow
  BatchQueryRequest batch;
  EXPECT_EQ(decode_batch_query(payload, batch), ErrorCode::kMalformed);
  EXPECT_TRUE(batch.indices.empty());
}

}  // namespace
}  // namespace retra::net

// Loopback integration tests for the retra-net-v1 server.
//
// A real Server on an ephemeral port serves a packed RTRADB02 fixture;
// real Clients dial 127.0.0.1 and must observe byte-for-byte the values
// a direct QueryService returns — through single queries, batches,
// pipelining, and board addressing, with a budget squeezed small enough
// that serving faults and evicts continuously.  The STATS op, the
// Server::Stats mirror, and the net.* obs metrics are reconciled
// against each other and against the number of positions actually
// asked.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "retra/game/awari_level.hpp"
#include "retra/net/client.hpp"
#include "retra/net/server.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/ra/builder.hpp"
#include "retra/support/rng.hpp"

namespace retra::net {
namespace {

constexpr int kMaxLevel = 6;

/// The solved awari database shared by every test; built once.
const db::Database& solved() {
  static const db::Database database =
      ra::build_database(game::AwariFamily{}, kMaxLevel);
  return database;
}

/// Owns a fixture file for the lifetime of the process and removes it at
/// exit.  The PID is baked into the name: ctest runs each test case as its
/// own process, and a shared fixed path lets one process truncate the file
/// mid-rewrite while a sibling is reading it.
struct ScratchDb {
  ScratchDb(const char* stem, int version) {
    path = (std::filesystem::temp_directory_path() /
            (std::string(stem) + "." + std::to_string(::getpid()) + ".db"))
               .string();
    db::save(solved(), path, db::Format{.version = version});
  }
  ~ScratchDb() { std::remove(path.c_str()); }
  std::string path;
};

/// Packs solved() to a per-process RTRADB02 scratch file; built once.
const std::string& fixture_path() {
  static const ScratchDb fixture("retra_test_net_server", 2);
  return fixture.path;
}

/// Compresses solved() to a per-process RTRADB03 scratch file; built once.
const std::string& compressed_fixture_path() {
  static const ScratchDb fixture("retra_test_net_server_c", 3);
  return fixture.path;
}

Server::OpenResult open_server(const ServerConfig& config = {}) {
  auto opened = Server::open(fixture_path(), config);
  EXPECT_TRUE(opened.ok) << opened.error;
  return opened;
}

std::unique_ptr<Client> dial(const Server& server) {
  auto connected = Client::connect("127.0.0.1", server.port());
  EXPECT_TRUE(connected.ok) << connected.error;
  return std::move(connected.client);
}

TEST(NetServer, EphemeralPortsAreDistinctAndReported) {
  auto a = open_server();
  auto b = open_server();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.server->port(), 0);
  EXPECT_NE(b.server->port(), 0);
  EXPECT_NE(a.server->port(), b.server->port());
}

TEST(NetServer, PingRoundTrips) {
  auto opened = open_server();
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  EXPECT_TRUE(client->ping().ok());
}

TEST(NetServer, FullDatabaseAgreementViaBatches) {
  // The anchor test: every value of every level, byte-for-byte, through
  // a server whose budget forces continuous fault/evict underneath.
  ServerConfig config;
  config.budget_bytes = 2048;  // fits one mid-size packed level
  config.hot_bytes = 1024;     // hot tier squeezed too
  auto opened = open_server(config);
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  for (int level = 0; level <= kMaxLevel; ++level) {
    const std::uint64_t size = solved().level(level).size();
    std::vector<idx::Index> indices(size);
    std::iota(indices.begin(), indices.end(), idx::Index{0});
    std::vector<db::Value> remote;
    // Sweep in protocol-sized chunks.
    for (std::size_t begin = 0; begin < indices.size();
         begin += kMaxBatchLookups) {
      const std::size_t count =
          std::min<std::size_t>(kMaxBatchLookups, indices.size() - begin);
      std::vector<db::Value> chunk;
      const auto status = client->batch_query(
          static_cast<std::uint32_t>(level),
          std::span(indices).subspan(begin, count), chunk);
      ASSERT_TRUE(status.ok())
          << status.transport << " " << error_name(status.code);
      remote.insert(remote.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(remote, solved().level(level)) << "level " << level;
  }
}

TEST(NetServer, CompressedDatabaseAgreementViaBatches) {
  // The fifth backend reached over the wire: an RTRADB03 file served
  // with the block cache squeezed to a sliver (every cold batch faults
  // and decodes blocks) under a hot tier sized for the whole decoded
  // database (~9.3 KB at 6 stones).  Two full sweeps must both match
  // the solver byte for byte, and the second must be answered entirely
  // from promoted block copies.
  ServerConfig config;
  config.budget_bytes = 2048;
  config.hot_bytes = 16384;
  auto opened = Server::open(compressed_fixture_path(), config);
  ASSERT_TRUE(opened.ok) << opened.error;
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  std::uint64_t asked = 0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int level = 0; level <= kMaxLevel; ++level) {
      const std::uint64_t size = solved().level(level).size();
      std::vector<idx::Index> indices(size);
      std::iota(indices.begin(), indices.end(), idx::Index{0});
      std::vector<db::Value> remote;
      for (std::size_t begin = 0; begin < indices.size();
           begin += kMaxBatchLookups) {
        const std::size_t count =
            std::min<std::size_t>(kMaxBatchLookups, indices.size() - begin);
        std::vector<db::Value> chunk;
        const auto status = client->batch_query(
            static_cast<std::uint32_t>(level),
            std::span(indices).subspan(begin, count), chunk);
        ASSERT_TRUE(status.ok())
            << status.transport << " " << error_name(status.code);
        remote.insert(remote.end(), chunk.begin(), chunk.end());
      }
      EXPECT_EQ(remote, solved().level(level))
          << "sweep " << sweep << " level " << level;
      asked += size;
    }
  }
  // Accounting holds at block granularity too: every position asked was
  // answered by the hot tier or the shared service, and the second
  // sweep never touched the service at all.
  StatsReply stats;
  ASSERT_TRUE(client->stats(stats).ok());
  EXPECT_EQ(stats.hot_hits + stats.lookups, asked);
  EXPECT_EQ(stats.hot_hits, asked / 2);
}

TEST(NetServer, ClientValueSourceAgreesWithDirectService) {
  auto opened = open_server();
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  auto adapted = ClientValueSource::open(*client);
  ASSERT_TRUE(adapted.ok) << adapted.error;
  serve::ValueSource& remote = *adapted.source;

  auto direct_opened = serve::QueryService::open(fixture_path());
  ASSERT_TRUE(direct_opened.ok) << direct_opened.error;
  serve::QueryService& direct = *direct_opened.service;

  ASSERT_EQ(remote.num_levels(), direct.num_levels());
  for (int level = 0; level <= kMaxLevel; ++level) {
    ASSERT_EQ(remote.level_size(level), direct.level_size(level));
    EXPECT_EQ(remote.level_values(level), direct.level_values(level))
        << "level " << level;
  }
}

TEST(NetServer, BatchedAndSingleAndPipelinedAgree) {
  auto opened = open_server();
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  support::Xoshiro256 rng(11);
  for (int level = 1; level <= kMaxLevel; ++level) {
    std::vector<idx::Index> indices(64);
    for (auto& index : indices) {
      index = rng.below(solved().level(level).size());
    }
    std::vector<db::Value> batched;
    ASSERT_TRUE(client
                    ->batch_query(static_cast<std::uint32_t>(level),
                                  indices, batched)
                    .ok());
    std::vector<db::Value> piped(indices.size());
    ASSERT_TRUE(client
                    ->pipelined_queries(static_cast<std::uint32_t>(level),
                                        indices, piped)
                    .ok());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      db::Value single = 0;
      ASSERT_TRUE(client
                      ->query(static_cast<std::uint32_t>(level),
                              indices[i], single)
                      .ok());
      const db::Value expected = solved().value(level, indices[i]);
      EXPECT_EQ(single, expected);
      EXPECT_EQ(batched[i], expected);
      EXPECT_EQ(piped[i], expected);
    }
  }
}

TEST(NetServer, BoardAddressingMatchesLevelIndex) {
  auto opened = open_server();
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  support::Xoshiro256 rng(13);
  for (int level = 1; level <= kMaxLevel; ++level) {
    for (int s = 0; s < 16; ++s) {
      const idx::Index index = rng.below(solved().level(level).size());
      const idx::Board board = idx::unrank(level, index);
      db::Value by_board = 0;
      db::Value by_index = 0;
      ASSERT_TRUE(client->query_board(board, by_board).ok());
      ASSERT_TRUE(client
                      ->query(static_cast<std::uint32_t>(level), index,
                              by_index)
                      .ok());
      EXPECT_EQ(by_board, by_index);
      EXPECT_EQ(by_board, solved().value(level, index));
    }
  }
}

TEST(NetServer, TypedErrorsForEveryBadAddress) {
  auto opened = open_server();
  auto client = dial(*opened.server);
  ASSERT_TRUE(client);
  db::Value out = 0;

  auto status = client->query(kMaxLevel + 1, 0, out);
  EXPECT_EQ(status.code, ErrorCode::kBadLevel);
  status = client->query(3, solved().level(3).size(), out);
  EXPECT_EQ(status.code, ErrorCode::kBadIndex);

  idx::Board board{};
  board[0] = static_cast<std::uint8_t>(kMaxLevel + 1);  // too many stones
  status = client->query_board(board, out);
  EXPECT_EQ(status.code, ErrorCode::kBadBoard);

  std::vector<db::Value> values;
  const std::vector<idx::Index> bad = {0, solved().level(2).size()};
  status = client->batch_query(2, bad, values);
  EXPECT_EQ(status.code, ErrorCode::kBadIndex);

  // The connection survives typed errors: a good query still answers.
  EXPECT_TRUE(client->query(2, 0, out).ok());
}

TEST(NetServer, GarbageBytesGetDiagnosedThenDisconnected) {
  auto opened = open_server();
  auto connected = Client::connect("127.0.0.1", opened.server->port());
  ASSERT_TRUE(connected.ok);
  // Speak raw garbage on the socket underneath the client: the server
  // must answer one typed ERROR frame and close.
  auto raw = connect_tcp("127.0.0.1", opened.server->port());
  ASSERT_TRUE(raw.ok);
  const char garbage[32] = "this is not a retra-net frame";
  ASSERT_TRUE(write_full(raw.fd.get(), garbage, sizeof garbage));
  std::byte header_bytes[FrameHeader::kWireSize];
  ASSERT_TRUE(read_full(raw.fd.get(), header_bytes, sizeof header_bytes));
  msg::WireReader reader(header_bytes);
  const FrameHeader header = FrameHeader::decode(reader);
  EXPECT_EQ(static_cast<Op>(header.op), Op::kError);
  EXPECT_EQ(static_cast<ErrorCode>(header.code), ErrorCode::kBadMagic);
  // Then EOF, not a hang.
  std::byte more;
  EXPECT_EQ(read_some(raw.fd.get(), &more, 1), 0);
}

TEST(NetServer, OversizedAnnouncementIsRefusedBeforeAllocation) {
  auto opened = open_server();
  auto raw = connect_tcp("127.0.0.1", opened.server->port());
  ASSERT_TRUE(raw.ok);
  FrameHeader header;
  header.op = static_cast<std::uint8_t>(Op::kBatchQuery);
  header.request_id = 5;
  header.payload_bytes = kMaxPayloadBytes + 1;
  std::byte bytes[FrameHeader::kWireSize];
  header.encode(bytes);
  ASSERT_TRUE(write_full(raw.fd.get(), bytes, sizeof bytes));
  std::byte reply[FrameHeader::kWireSize];
  ASSERT_TRUE(read_full(raw.fd.get(), reply, sizeof reply));
  msg::WireReader reader(reply);
  const FrameHeader back = FrameHeader::decode(reader);
  EXPECT_EQ(static_cast<Op>(back.op), Op::kError);
  EXPECT_EQ(static_cast<ErrorCode>(back.code), ErrorCode::kOversizedFrame);
  EXPECT_EQ(back.request_id, 5u);
}

TEST(NetServer, ResponseOpFromClientIsRejected) {
  auto opened = open_server();
  auto raw = connect_tcp("127.0.0.1", opened.server->port());
  ASSERT_TRUE(raw.ok);
  const auto frame = encode_pong(9);  // a response op, sent as a request
  ASSERT_TRUE(write_full(raw.fd.get(), frame.data(), frame.size()));
  std::byte reply[FrameHeader::kWireSize];
  ASSERT_TRUE(read_full(raw.fd.get(), reply, sizeof reply));
  msg::WireReader reader(reply);
  const FrameHeader back = FrameHeader::decode(reader);
  EXPECT_EQ(static_cast<Op>(back.op), Op::kError);
  EXPECT_EQ(static_cast<ErrorCode>(back.code), ErrorCode::kBadOp);
}

TEST(NetServer, StatsReconcileWithObsAndWithTrafficSent) {
  const obs::Snapshot before = obs::snapshot();
  ServerConfig config;
  config.budget_bytes = 2048;
  auto opened = open_server(config);
  Server& server = *opened.server;
  auto client = dial(server);
  ASSERT_TRUE(client);

  support::Xoshiro256 rng(17);
  std::uint64_t asked = 0;
  db::Value out = 0;
  for (int q = 0; q < 100; ++q) {
    const int level = 1 + static_cast<int>(rng.below(kMaxLevel));
    ASSERT_TRUE(client
                    ->query(static_cast<std::uint32_t>(level),
                            rng.below(solved().level(level).size()), out)
                    .ok());
    ++asked;
  }
  std::vector<idx::Index> indices(50);
  for (auto& index : indices) {
    index = rng.below(solved().level(4).size());
  }
  std::vector<db::Value> values;
  ASSERT_TRUE(client->batch_query(4, indices, values).ok());
  asked += indices.size();
  ASSERT_TRUE(client->ping().ok());

  // The remote STATS view, the local mirror, and the obs registry must
  // all tell the same story.
  StatsReply remote;
  ASSERT_TRUE(client->stats(remote).ok());
  const Server::Stats local = server.stats();
  EXPECT_EQ(remote.connections, local.connections);
  EXPECT_EQ(remote.queries, local.queries);
  EXPECT_EQ(remote.batch_queries, local.batch_queries);
  EXPECT_EQ(remote.pings, local.pings);
  EXPECT_EQ(remote.stats_ops, local.stats_ops);  // includes itself
  EXPECT_EQ(remote.hot_hits, local.hot_hits);
  EXPECT_EQ(remote.queries, 100u);
  EXPECT_EQ(remote.batch_queries, 1u);
  EXPECT_EQ(remote.pings, 1u);
  EXPECT_EQ(remote.stats_ops, 1u);
  EXPECT_EQ(remote.requests, 102u + remote.stats_ops);
  EXPECT_EQ(remote.errors, 0u);
  EXPECT_EQ(remote.shed, 0u);
  ASSERT_EQ(remote.level_sizes.size(),
            static_cast<std::size_t>(kMaxLevel + 1));
  for (int level = 0; level <= kMaxLevel; ++level) {
    EXPECT_EQ(remote.level_sizes[static_cast<std::size_t>(level)],
              solved().level(level).size());
  }

  // Every position asked was answered by the hot tier or the service.
  EXPECT_EQ(remote.hot_hits + remote.lookups, asked);

  const obs::Snapshot delta = obs::snapshot() - before;
  EXPECT_EQ(delta[obs::Id::kNetConnections].value, local.connections);
  EXPECT_EQ(delta[obs::Id::kNetRequests].value, local.requests);
  EXPECT_EQ(delta[obs::Id::kNetHotHits].value, local.hot_hits);
  EXPECT_EQ(delta[obs::Id::kNetShed].value, 0u);
  // One latency observation per answered request.
  EXPECT_EQ(delta[obs::Id::kNetQueryMicros].count, remote.queries);
  EXPECT_EQ(delta[obs::Id::kNetBatchMicros].count, remote.batch_queries);
  EXPECT_EQ(delta[obs::Id::kNetOtherMicros].count,
            remote.pings + remote.stats_ops);
  EXPECT_GT(delta[obs::Id::kNetBytesIn].value, 0u);
  EXPECT_GT(delta[obs::Id::kNetBytesOut].value, 0u);
}

TEST(NetServer, CleanShutdownWithConnectionsOpen) {
  auto opened = open_server();
  Server& server = *opened.server;
  // Several connections left open, one with answered traffic behind it.
  auto busy = dial(server);
  auto idle_a = dial(server);
  auto idle_b = dial(server);
  ASSERT_TRUE(busy && idle_a && idle_b);
  std::vector<idx::Index> indices(256);
  std::iota(indices.begin(), indices.end(), idx::Index{0});
  std::vector<db::Value> values(indices.size());
  ASSERT_TRUE(busy->pipelined_queries(5, indices, values).ok());

  server.stop();  // must not hang on the open connections

  // Clients observe orderly EOF, not a stuck read.
  EXPECT_FALSE(idle_a->ping().ok());
  EXPECT_FALSE(busy->ping().ok());
  // stop() is idempotent.
  server.stop();
}

TEST(NetServer, InFlightPipelineIsAnsweredAcrossStop) {
  // Requests admitted before stop() must be answered, not dropped: fire
  // a pipeline, call stop() immediately, then read every response.
  ServerConfig config;
  config.budget_bytes = 2048;  // slow the workers down with faulting
  auto opened = open_server(config);
  Server& server = *opened.server;
  auto client = dial(server);
  ASSERT_TRUE(client);
  const std::uint64_t size = solved().level(kMaxLevel).size();
  std::vector<idx::Index> indices(512);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<idx::Index>(i) % size;
  }
  // Write the frames ourselves, then stop the server mid-flight.
  std::thread stopper([&server] { server.stop(); });
  std::vector<db::Value> values(indices.size());
  std::vector<ErrorCode> codes;
  const auto status =
      client->pipelined_queries(kMaxLevel, indices, values, &codes);
  stopper.join();
  if (status.ok()) {
    // Every response that arrived is correct and exactly-once.
    for (std::size_t i = 0; i < indices.size(); ++i) {
      if (codes[i] == ErrorCode::kNone) {
        EXPECT_EQ(values[i], solved().value(kMaxLevel, indices[i]));
      } else {
        EXPECT_EQ(codes[i], ErrorCode::kBusy);
      }
    }
  }
  // Whether the race admitted all, some (then EOF), or none, stop()
  // returned and the server wound down — that is the contract.
}

}  // namespace
}  // namespace retra::net

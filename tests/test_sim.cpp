#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/para/sim_build.hpp"
#include "retra/ra/builder.hpp"
#include "retra/sim/cluster_model.hpp"
#include "retra/sim/projection.hpp"
#include "retra/sim/sim_driver.hpp"
#include "retra/sim/sim_world.hpp"

namespace retra::sim {
namespace {

TEST(ClusterModel, CpuSecondsPriceWork) {
  MachineModel machine;
  machine.cpu_ops_per_second = 1e6;
  msg::WorkMeter meter;
  meter.charge(msg::WorkKind::kAssign, 100);  // 80 ops each by default
  EXPECT_NEAR(machine.cpu_seconds(meter), 100 * 80 / 1e6, 1e-12);
}

TEST(EthernetModel, MediumTimeHasMinimumFrame) {
  EthernetModel net;
  // A 1-byte payload still occupies a 64-byte frame: 51.2 us at 10 Mb/s.
  EXPECT_NEAR(net.medium_seconds(1), 64 * 8 / 10e6, 1e-9);
  // A 4 KB payload: (4096+58)*8/10e6.
  EXPECT_NEAR(net.medium_seconds(4096), (4096 + 58) * 8 / 10e6, 1e-9);
}

TEST(ClusterModel, BarrierGrowsWithRanks) {
  ClusterModel model;
  EXPECT_LT(model.barrier_seconds(2), model.barrier_seconds(64));
}

TEST(SimWorld, DeliversThroughDriverOnly) {
  SimWorld world(2);
  world.endpoint(0).send(1, 7, std::vector<std::byte>(3));
  msg::Message m;
  // Not delivered until the driver moves it.
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  auto outbox = world.take_outbox();
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox[0].source, 0);
  EXPECT_EQ(outbox[0].dest, 1);
  world.deliver(outbox[0].dest, std::move(outbox[0].message));
  ASSERT_TRUE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(m.tag, 7);
}

TEST(SimBuild, ValuesIdenticalToSequential) {
  para::ParallelConfig config;
  config.ranks = 4;
  const ClusterModel model;
  const auto result = para::build_parallel_simulated(
      game::AwariFamily{}, 5, config, model);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
  EXPECT_GT(result.total_time_s(), 0.0);
}

TEST(SimBuild, DeterministicTimings) {
  para::ParallelConfig config;
  config.ranks = 8;
  const ClusterModel model;
  const auto a = para::build_parallel_simulated(game::AwariFamily{}, 4,
                                                config, model);
  const auto b = para::build_parallel_simulated(game::AwariFamily{}, 4,
                                                config, model);
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timings[i].time_s, b.timings[i].time_s);
    EXPECT_EQ(a.timings[i].messages, b.timings[i].messages);
  }
}

TEST(SimBuild, CombiningIsDramaticallyFaster) {
  // The paper's central claim, in miniature: same workload, same values,
  // orders of magnitude apart in simulated communication time.
  // Small levels only partially fill 4 KB buffers before each superstep
  // flush, so the full factors need the bench-scale levels; even here the
  // direction and a solid margin must hold.
  para::ParallelConfig combined;
  combined.ranks = 8;
  combined.combine_bytes = 4096;
  para::ParallelConfig naive = combined;
  naive.combine_bytes = 1;
  const ClusterModel model;
  const auto fast = para::build_parallel_simulated(game::AwariFamily{}, 8,
                                                   combined, model);
  const auto slow = para::build_parallel_simulated(game::AwariFamily{}, 8,
                                                   naive, model);
  EXPECT_EQ(fast.database->gather(), slow.database->gather());
  EXPECT_LT(fast.total_time_s() * 2, slow.total_time_s());
  EXPECT_LT(fast.timings.back().messages * 5,
            slow.timings.back().messages);
}

TEST(SimBuild, BreakdownCoversWallClock) {
  para::ParallelConfig config;
  config.ranks = 4;
  const ClusterModel model;
  const auto result = para::build_parallel_simulated(
      game::AwariFamily{}, 5, config, model);
  for (const SimRunResult& timing : result.timings) {
    for (const RankBreakdown& rank : timing.per_rank) {
      // busy + idle + barriers == wall clock for every rank.
      EXPECT_NEAR(rank.busy_s() + rank.idle_s + timing.barrier_s,
                  timing.time_s, 1e-6);
    }
  }
}

TEST(SimBuild, NetworkBusyNeverExceedsWallClock) {
  para::ParallelConfig config;
  config.ranks = 6;
  const ClusterModel model;
  const auto result = para::build_parallel_simulated(
      game::AwariFamily{}, 6, config, model);
  for (const SimRunResult& timing : result.timings) {
    EXPECT_LE(timing.network_busy_s, timing.time_s + 1e-9);
  }
}

TEST(SimBuild, GraphGameWorksToo) {
  game::GraphGameConfig gconfig;
  gconfig.levels = 4;
  gconfig.size0 = 16;
  gconfig.seed = 5;
  const game::GraphGame graph(gconfig);
  para::ParallelConfig config;
  config.ranks = 4;
  const auto result = para::build_parallel_simulated(
      graph, graph.num_levels() - 1, config, ClusterModel{});
  EXPECT_EQ(result.database->gather(),
            ra::build_database(graph, graph.num_levels() - 1));
}

TEST(Projection, ProfileExtractsDensities) {
  para::ParallelConfig config;
  config.ranks = 4;
  const auto result = para::build_parallel_simulated(
      game::AwariFamily{}, 6, config, ClusterModel{});
  const LevelProfile profile = para::profile_of(result.levels.back());
  EXPECT_EQ(profile.positions, idx::level_size(6));
  EXPECT_GT(profile.edges_pp, 0.0);
  EXPECT_LE(profile.edges_pp, 6.0);  // at most six moves per position
  EXPECT_GT(profile.preds_pp, 0.0);
  EXPECT_GT(profile.rounds, 0u);
}

TEST(Projection, MoreRanksLessComputePerRank) {
  LevelProfile profile;
  profile.positions = 10'000'000;
  profile.exits_pp = 1.0;
  profile.edges_pp = 3.0;
  profile.preds_pp = 3.0;
  profile.assigns_pp = 0.9;
  profile.updates_pp = 3.0;
  profile.lookups_pp = 1.0;
  profile.rounds = 200;
  const ClusterModel model;
  const auto p8 = project_level(profile, 8, model, 4096);
  const auto p64 = project_level(profile, 64, model, 4096);
  EXPECT_GT(p8.compute_s, p64.compute_s * 6);
  EXPECT_LT(p64.time_s, p8.time_s);  // still scaling at this size
}

TEST(Projection, CombiningOffExplodesOverheads) {
  LevelProfile profile;
  profile.positions = 1'000'000;
  profile.edges_pp = 3.0;
  profile.preds_pp = 3.0;
  profile.updates_pp = 3.0;
  profile.assigns_pp = 0.9;
  profile.lookups_pp = 1.0;
  profile.exits_pp = 1.0;
  profile.rounds = 100;
  const ClusterModel model;
  const auto on = project_level(profile, 64, model, 4096);
  const auto off = project_level(profile, 64, model, 1);
  EXPECT_GT(off.time_s, on.time_s * 5);
  EXPECT_GT(off.messages, on.messages * 100);
}

TEST(Projection, ScaledProfileKeepsDensities) {
  LevelProfile profile;
  profile.positions = 1000;
  profile.edges_pp = 2.5;
  profile.rounds = 50;
  const LevelProfile big = profile.scaled(1'000'000, 2.0);
  EXPECT_EQ(big.positions, 1'000'000u);
  EXPECT_DOUBLE_EQ(big.edges_pp, 2.5);
  EXPECT_EQ(big.rounds, 100u);
}

TEST(Projection, CoherentWithTheEventDrivenModel) {
  // The closed form and the discrete-event driver must tell the same
  // story at a scale where both can run: the projection amortises the
  // partial-buffer flushes and per-round barriers the DES plays out, so
  // it is systematically a little faster, but never a different regime.
  const ClusterModel model;
  for (const int ranks : {4, 16, 64}) {
    para::ParallelConfig config;
    config.ranks = ranks;
    const auto run = para::build_parallel_simulated(game::AwariFamily{}, 9,
                                                    config, model);
    const LevelProfile profile = para::profile_of(run.levels.back());
    const double projected =
        project_level(profile, ranks, model, 4096).time_s;
    const double simulated = run.timings.back().time_s;
    EXPECT_GT(simulated, projected * 0.8) << "P=" << ranks;
    EXPECT_LT(simulated, projected * 3.0) << "P=" << ranks;
  }
}

TEST(Projection, SpeedupCurveHasThePaperShape) {
  // A paper-scale level: compute-dominated at low P, bending as the
  // shared network and barriers grow; speedup at 64 lands in the
  // neighbourhood the abstract reports (48) without exceeding P.
  LevelProfile profile;
  profile.positions = 200'000'000;  // paper-scale database
  profile.exits_pp = 1.2;
  profile.edges_pp = 3.5;
  profile.preds_pp = 3.5;
  profile.assigns_pp = 0.9;
  profile.updates_pp = 3.5;
  profile.lookups_pp = 1.2;
  profile.rounds = 2000;
  const ClusterModel model;
  const double t1 = project_level(profile, 1, model, 4096).time_s;
  double previous = t1;
  for (const int ranks : {2, 4, 8, 16, 32, 64}) {
    const double t = project_level(profile, ranks, model, 4096).time_s;
    const double speedup = t1 / t;
    EXPECT_LT(t, previous) << ranks;  // still profitable at every step
    EXPECT_LE(speedup, ranks * 1.001) << ranks;
    previous = t;
  }
  const double speedup64 =
      t1 / project_level(profile, 64, model, 4096).time_s;
  EXPECT_GT(speedup64, 30.0);
  EXPECT_LT(speedup64, 64.0);
}

}  // namespace
}  // namespace retra::sim

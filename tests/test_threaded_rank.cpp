// Two-level parallelism: threads_per_rank must be invisible in every
// observable output.  For any (P, T, scheme, combine_bytes, driver) the
// gathered database must be bit-identical to the sequential sweep
// solver's, and the per-rank EngineStats and work meters must be
// *identical* across T — the chunked phases stage their records, queue
// pushes, and counters per chunk and merge in chunk order, so T only ever
// changes wall clock.  The same holds for per-phase splits
// (threads_scan != threads_drain) and for the exec::simd sweep-kernel
// backend: scalar and vector builds are bit-identical too.
#include <cstddef>
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "retra/exec/simd.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

// ------------------------------------------------------------------
// StepReport reduction identity (the += seeding bug).

TEST(StepReport, DefaultConstructedIsAbsorbingForReady) {
  // This is why reduction_identity() exists: a default-constructed report
  // has ready == false, so folding any number of ready ranks into it can
  // never report a quiescent round.
  StepReport fold;
  StepReport ready_rank;
  ready_rank.ready = true;
  fold += ready_rank;
  EXPECT_FALSE(fold.ready);
}

TEST(StepReport, ReductionIdentityIsAnIdentity) {
  StepReport rank;
  rank.records_sent = 3;
  rank.records_received = 2;
  rank.work = 7;
  rank.ready = true;

  StepReport fold = StepReport::reduction_identity();
  fold += rank;
  EXPECT_EQ(fold.records_sent, 3u);
  EXPECT_EQ(fold.records_received, 2u);
  EXPECT_EQ(fold.work, 7u);
  EXPECT_TRUE(fold.ready);

  // Folding a not-ready rank clears readiness; counters keep summing.
  StepReport busy_rank;
  busy_rank.work = 1;
  fold += busy_rank;
  EXPECT_FALSE(fold.ready);
  EXPECT_EQ(fold.work, 8u);

  // The identity contributes nothing to itself.
  StepReport zero = StepReport::reduction_identity();
  zero += StepReport::reduction_identity();
  EXPECT_TRUE(zero.ready);
  EXPECT_EQ(zero.records_sent, 0u);
  EXPECT_EQ(zero.work, 0u);
}

// ------------------------------------------------------------------
// Bit-identity across T.

ParallelConfig with_threads(int ranks, int threads) {
  ParallelConfig config;
  config.ranks = ranks;
  config.threads_per_rank = threads;
  // Correctness tests need the exact requested T even on small CI hosts.
  config.oversubscribe = true;
  return config;
}

TEST(ThreadedRank, SingleRankMatchesSequentialForAllAwariLevels) {
  const db::Database expected = ra::build_database(game::AwariFamily{}, 6);
  for (const int threads : {1, 2, 4, 8}) {
    const ParallelResult result =
        build_parallel(game::AwariFamily{}, 6, with_threads(1, threads));
    EXPECT_EQ(result.database->gather(), expected) << "T=" << threads;
  }
}

class PxTSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, PartitionScheme, std::size_t>> {};

TEST_P(PxTSweep, AwariBitIdenticalToSequentialSolver) {
  const auto [ranks, threads, scheme, combine_bytes] = GetParam();
  ParallelConfig config = with_threads(ranks, threads);
  config.scheme = scheme;
  config.block_size = 16;
  config.combine_bytes = combine_bytes;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 6, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PxTSweep,
    ::testing::Values(
        std::make_tuple(2, 2, PartitionScheme::kCyclic, std::size_t{4096}),
        std::make_tuple(4, 3, PartitionScheme::kBlock, std::size_t{4096}),
        std::make_tuple(3, 2, PartitionScheme::kBlockCyclic, std::size_t{1}),
        std::make_tuple(4, 8, PartitionScheme::kCyclic, std::size_t{1}),
        std::make_tuple(2, 4, PartitionScheme::kBlock, std::size_t{64})));

TEST(ThreadedRank, ThreadedDriverTimesThreadsPerRank) {
  // Real rank threads, each with its own worker pool: P×T OS-level
  // parallelism.
  ParallelConfig config = with_threads(3, 2);
  config.use_threads = true;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 6, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

TEST(ThreadedRank, AsyncDriverTimesThreadsPerRank) {
  ParallelConfig config = with_threads(3, 2);
  config.use_threads = true;
  config.async = true;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 6, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

TEST(ThreadedRank, ThreadsFarBeyondTheChunkCount) {
  // Graph-game levels are tiny: with 4 ranks many local shards hold fewer
  // positions than T = 16, so most chunks are empty.
  game::GraphGameConfig graph_config;
  graph_config.levels = 4;
  graph_config.size0 = 14;
  graph_config.seed = 77;
  const game::GraphGame graph(graph_config);
  ParallelConfig config = with_threads(4, 16);
  const ParallelResult result =
      build_parallel(graph, graph.num_levels() - 1, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(graph, graph.num_levels() - 1));

  // Degenerate extreme: T = 32 against awari level 3 (level sizes <= 364).
  const ParallelResult tiny =
      build_parallel(game::AwariFamily{}, 3, with_threads(1, 32));
  EXPECT_EQ(tiny.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST(ThreadedRank, KalahMatchesSequential) {
  const db::Database expected = ra::build_database(game::KalahFamily{}, 5);
  for (const int threads : {1, 4}) {
    const ParallelResult result =
        build_parallel(game::KalahFamily{}, 5, with_threads(2, threads));
    EXPECT_EQ(result.database->gather(), expected) << "T=" << threads;
  }
}

// ------------------------------------------------------------------
// Deterministic stats merge.

void expect_same_stats(const EngineStats& a, const EngineStats& b,
                       int level, int rank) {
  EXPECT_EQ(a.updates_remote, b.updates_remote) << level << "/" << rank;
  EXPECT_EQ(a.updates_local, b.updates_local) << level << "/" << rank;
  EXPECT_EQ(a.lookups_remote, b.lookups_remote) << level << "/" << rank;
  EXPECT_EQ(a.lookups_local, b.lookups_local) << level << "/" << rank;
  EXPECT_EQ(a.replies_sent, b.replies_sent) << level << "/" << rank;
  EXPECT_EQ(a.assignments, b.assignments) << level << "/" << rank;
  EXPECT_EQ(a.zero_filled, b.zero_filled) << level << "/" << rank;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << level << "/" << rank;
  EXPECT_EQ(a.payload_bytes, b.payload_bytes) << level << "/" << rank;
}

TEST(ThreadedRank, StatsAndMetersIdenticalAcrossThreadCounts) {
  const ParallelResult reference =
      build_parallel(game::AwariFamily{}, 6, with_threads(2, 1));
  for (const int threads : {2, 8}) {
    const ParallelResult result =
        build_parallel(game::AwariFamily{}, 6, with_threads(2, threads));
    ASSERT_EQ(result.levels.size(), reference.levels.size());
    for (std::size_t l = 0; l < reference.levels.size(); ++l) {
      const LevelRunInfo& expect = reference.levels[l];
      const LevelRunInfo& got = result.levels[l];
      EXPECT_EQ(got.rounds, expect.rounds) << "level " << expect.level;
      ASSERT_EQ(got.per_rank.size(), expect.per_rank.size());
      for (std::size_t r = 0; r < expect.per_rank.size(); ++r) {
        expect_same_stats(got.per_rank[r], expect.per_rank[r], expect.level,
                          static_cast<int>(r));
        for (std::size_t k = 0; k < msg::kWorkKinds; ++k) {
          EXPECT_EQ(got.work_per_rank[r].counts[k],
                    expect.work_per_rank[r].counts[k])
              << "level " << expect.level << " rank " << r << " kind " << k;
        }
      }
    }
  }
}

// ------------------------------------------------------------------
// Per-phase thread splits and sweep-kernel backends.

void expect_same_run(const ParallelResult& got,
                     const ParallelResult& expect) {
  EXPECT_EQ(got.database->gather(), expect.database->gather());
  ASSERT_EQ(got.levels.size(), expect.levels.size());
  for (std::size_t l = 0; l < expect.levels.size(); ++l) {
    EXPECT_EQ(got.levels[l].rounds, expect.levels[l].rounds);
    ASSERT_EQ(got.levels[l].per_rank.size(),
              expect.levels[l].per_rank.size());
    for (std::size_t r = 0; r < expect.levels[l].per_rank.size(); ++r) {
      expect_same_stats(got.levels[l].per_rank[r],
                        expect.levels[l].per_rank[r],
                        expect.levels[l].level, static_cast<int>(r));
      for (std::size_t k = 0; k < msg::kWorkKinds; ++k) {
        EXPECT_EQ(got.levels[l].work_per_rank[r].counts[k],
                  expect.levels[l].work_per_rank[r].counts[k])
            << "level " << expect.levels[l].level << " rank " << r
            << " kind " << k;
      }
    }
  }
}

class PhaseSplit
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PhaseSplit, BitAndStatsIdenticalToUniformThreads) {
  const auto [ranks, threads_scan, threads_drain] = GetParam();
  const ParallelResult reference =
      build_parallel(game::AwariFamily{}, 6, with_threads(ranks, 1));
  ParallelConfig config = with_threads(ranks, 1);
  config.threads_scan = threads_scan;
  config.threads_drain = threads_drain;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 6, config);
  expect_same_run(result, reference);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

INSTANTIATE_TEST_SUITE_P(Grid, PhaseSplit,
                         ::testing::Values(std::make_tuple(1, 4, 1),
                                           std::make_tuple(1, 1, 4),
                                           std::make_tuple(2, 3, 2),
                                           std::make_tuple(2, 8, 3),
                                           std::make_tuple(3, 2, 5)));

TEST(SimdBackends, BuildsBitIdenticalAcrossBackendsAndSplits) {
  // The engines must not observe which sweep-kernel backend ran: for a
  // P×T grid cell, the database, stats, and meters of a scalar-pinned
  // build equal the widest backend's exactly.
  const exec::simd::Backend previous = exec::simd::active();
  exec::simd::set_active(exec::simd::Backend::kScalar);
  ParallelConfig config = with_threads(2, 2);
  config.threads_scan = 3;
  config.threads_drain = 2;
  const ParallelResult scalar =
      build_parallel(game::AwariFamily{}, 6, config);
  exec::simd::set_active(exec::simd::widest_available());
  const ParallelResult vector =
      build_parallel(game::AwariFamily{}, 6, config);
  exec::simd::set_active(previous);
  expect_same_run(vector, scalar);
}

TEST(PhaseThreads, BookkeepingFollowsEachPhaseNotOneGlobalT) {
  // The engine used to publish a single thread gauge; with per-phase
  // widths the scan and drain gauges must report their own phase's T (0
  // inheriting the global knob), whatever the pool width is.
  ParallelConfig config = with_threads(1, 2);
  config.threads_scan = 5;
  config.threads_drain = 3;
  (void)build_parallel(game::AwariFamily{}, 3, config);
  obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap[obs::Id::kEngineScanThreads].value, 5u);
  EXPECT_EQ(snap[obs::Id::kEngineDrainThreads].value, 3u);

  (void)build_parallel(game::AwariFamily{}, 3, with_threads(1, 4));
  snap = obs::snapshot();
  EXPECT_EQ(snap[obs::Id::kEngineScanThreads].value, 4u);
  EXPECT_EQ(snap[obs::Id::kEngineDrainThreads].value, 4u);
}

}  // namespace
}  // namespace retra::para

#include <gtest/gtest.h>

#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/rng.hpp"
#include "retra/support/stats.hpp"
#include "retra/support/table.hpp"

namespace retra::support {
namespace {

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(12345), b(12345), c(54321);
  bool any_differ = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    if (x != c()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(11);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5000; ++i) seen[rng.below(5)]++;
  for (const int count : seen) EXPECT_GT(count, 500);
}

TEST(Rng, UniformIsInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitmixIsConstexprAndMixes) {
  static_assert(splitmix64(1) != splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(IntHistogram, CountsAndSigns) {
  IntHistogram h(-3, 3);
  h.add(-2);
  h.add(0, 5);
  h.add(1);
  h.add(3);
  h.add(7);  // clamps to +3
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.count_at(0), 5u);
  EXPECT_EQ(h.count_at(3), 2u);
  EXPECT_EQ(h.positive(), 3u);
  EXPECT_EQ(h.negative(), 1u);
  EXPECT_EQ(h.zero(), 5u);
}

TEST(IntHistogram, Merge) {
  IntHistogram a(-1, 1), b(-1, 1);
  a.add(1);
  b.add(-1, 2);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count_at(-1), 2u);
}

TEST(Balance, PerfectAndSkewed) {
  EXPECT_DOUBLE_EQ(balance_of(std::vector<double>{2, 2, 2}).imbalance, 1.0);
  const Balance b = balance_of(std::vector<std::uint64_t>{1, 3});
  EXPECT_DOUBLE_EQ(b.mean, 2.0);
  EXPECT_DOUBLE_EQ(b.imbalance, 1.5);
}

TEST(Table, RendersAligned) {
  Table t({"a", "bb"});
  t.row().add(std::uint64_t{1234}).add("x");
  const std::string out = t.render();
  EXPECT_NE(out.find("1 234"), std::string::npos);
  EXPECT_NE(out.find("--"), std::string::npos);
}

TEST(Table, Thousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1 000");
  EXPECT_EQ(with_thousands(1234567890), "1 234 567 890");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KB");
  EXPECT_EQ(human_bytes(600ull << 20), "600.0 MB");
}

TEST(Format, HumanSeconds) {
  EXPECT_EQ(human_seconds(0.00213), "2.13 ms");
  EXPECT_EQ(human_seconds(3.5), "3.50 s");
  EXPECT_EQ(human_seconds(3600 + 23 * 60 + 45), "1h23m45s");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  Cli cli;
  cli.flag("level", "5", "level");
  cli.flag("verbose", "false", "verbosity");
  cli.flag("name", "x", "name");
  const char* argv[] = {"prog", "--level=9", "--verbose", "pos1",
                        "--name=abc"};
  cli.parse(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.integer("level"), 9);
  EXPECT_TRUE(cli.boolean("verbose"));
  EXPECT_EQ(cli.str("name"), "abc");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

}  // namespace
}  // namespace retra::support

// Unit tests of the retra_lint rules (tools/retra_lint/lint_rules.cpp):
// each rule is exercised with a passing and a failing fixture, plus the
// allow-comment escape.
#include "lint_rules.hpp"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace retra::lint {
namespace {

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ------------------------------------------------------------------
// pragma-once

TEST(PragmaOnce, HeaderWithGuardPasses) {
  const auto findings = lint_file("src/db/include/retra/db/x.hpp",
                                  "// comment\n#pragma once\nint f();\n");
  EXPECT_FALSE(has_rule(findings, "pragma-once"));
}

TEST(PragmaOnce, HeaderWithoutGuardFails) {
  const auto findings =
      lint_file("src/db/include/retra/db/x.hpp", "int f();\n");
  ASSERT_TRUE(has_rule(findings, "pragma-once"));
}

TEST(PragmaOnce, GuardMustPrecedeCode) {
  const auto findings = lint_file("src/db/include/retra/db/x.hpp",
                                  "int f();\n#pragma once\n");
  EXPECT_TRUE(has_rule(findings, "pragma-once"));
}

TEST(PragmaOnce, SourceFilesAreExempt) {
  const auto findings = lint_file("src/db/src/x.cpp", "int f() { return 1; }\n");
  EXPECT_FALSE(has_rule(findings, "pragma-once"));
}

// ------------------------------------------------------------------
// include-hygiene

TEST(IncludeHygiene, FullProjectPathPasses) {
  const auto findings =
      lint_file("src/db/src/x.cpp",
                "#include \"retra/db/database.hpp\"\n#include <vector>\n");
  EXPECT_FALSE(has_rule(findings, "include-hygiene"));
}

TEST(IncludeHygiene, RelativeQuotedIncludeUnderSrcFails) {
  const auto findings =
      lint_file("src/db/src/x.cpp", "#include \"database.hpp\"\n");
  EXPECT_TRUE(has_rule(findings, "include-hygiene"));
}

TEST(IncludeHygiene, QuotedIncludeOutsideSrcIsAllowed) {
  const auto findings =
      lint_file("bench/bench_x.cpp", "#include \"bench_common.hpp\"\n");
  EXPECT_FALSE(has_rule(findings, "include-hygiene"));
}

TEST(IncludeHygiene, BitsIncludeFails) {
  const auto findings =
      lint_file("src/db/src/x.cpp", "#include <bits/stdc++.h>\n");
  EXPECT_TRUE(has_rule(findings, "include-hygiene"));
}

TEST(IncludeHygiene, ParentTraversalFails) {
  const auto findings =
      lint_file("tests/x.cpp", "#include \"../src/db/secret.hpp\"\n");
  EXPECT_TRUE(has_rule(findings, "include-hygiene"));
}

// ------------------------------------------------------------------
// determinism

TEST(Determinism, WallClockInSolverPathFails) {
  const auto findings = lint_file(
      "src/para/include/retra/para/x.hpp",
      "#pragma once\nauto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(has_rule(findings, "determinism"));
}

TEST(Determinism, StdRandInMsgPathFails) {
  const auto findings =
      lint_file("src/msg/src/x.cpp", "int r = std::rand();\n");
  EXPECT_TRUE(has_rule(findings, "determinism"));
}

TEST(Determinism, SupportTimerIsOutOfScope) {
  const auto findings = lint_file(
      "src/support/include/retra/support/timer.hpp",
      "#pragma once\nusing Clock = std::chrono::steady_clock;\n");
  EXPECT_FALSE(has_rule(findings, "determinism"));
}

TEST(Determinism, MentionInCommentOrStringIsIgnored) {
  const auto findings = lint_file(
      "src/para/src/x.cpp",
      "// steady_clock would break determinism\n"
      "const char* s = \"rand\";\n");
  EXPECT_FALSE(has_rule(findings, "determinism"));
}

TEST(Determinism, SeededXoshiroPasses) {
  const auto findings =
      lint_file("src/para/src/x.cpp", "support::Xoshiro256 rng(42);\n");
  EXPECT_FALSE(has_rule(findings, "determinism"));
}

// Regression: the pre-tokenizer stripper tracked quotes character by
// character, so the inner `"` of a raw string ended its string state
// early and banned words inside the literal leaked into the token scan.
TEST(Determinism, RawStringContentsAreIgnored) {
  // The banned words sit after an embedded quote, exactly where the old
  // stripper had already (wrongly) left its string state.
  const auto findings = lint_file(
      "src/para/src/x.cpp",
      "const char* s = R\"(say \" then rand and mt19937 loudly)\";\n"
      "int y = 0;\n");
  EXPECT_FALSE(has_rule(findings, "determinism"));
}

// Regression: a digit separator used to be read as the start of a char
// literal, swallowing the code after it (hiding real findings) or
// un-hiding literal text (creating false ones).
TEST(Determinism, DigitSeparatorDoesNotDesyncStripping) {
  const auto no_fp = lint_file("src/para/src/x.cpp",
                               "int n = 1'000'000;\nconst char* s = \"rand\";\n");
  EXPECT_FALSE(has_rule(no_fp, "determinism"));

  const auto real = lint_file("src/para/src/x.cpp",
                              "int n = 1'000'000;\nint r = std::rand();\n");
  EXPECT_TRUE(has_rule(real, "determinism"));
}

// ------------------------------------------------------------------
// raw-alloc

TEST(RawAlloc, NewUnderSrcFails) {
  const auto findings =
      lint_file("src/db/src/x.cpp", "int* p = new int(3);\n");
  EXPECT_TRUE(has_rule(findings, "raw-alloc"));
}

TEST(RawAlloc, DeleteUnderSrcFails) {
  const auto findings = lint_file("src/db/src/x.cpp", "delete p;\n");
  EXPECT_TRUE(has_rule(findings, "raw-alloc"));
}

TEST(RawAlloc, MakeUniquePasses) {
  const auto findings = lint_file(
      "src/db/src/x.cpp", "auto p = std::make_unique<int>(3);\n");
  EXPECT_FALSE(has_rule(findings, "raw-alloc"));
}

TEST(RawAlloc, DeletedMemberIsNotAnAllocation) {
  const auto findings = lint_file(
      "src/db/include/retra/db/x.hpp",
      "#pragma once\nstruct X {\n  X(const X&) = delete;\n};\n");
  EXPECT_FALSE(has_rule(findings, "raw-alloc"));
}

TEST(RawAlloc, OperatorNewDefinitionIsNotAnAllocation) {
  const auto findings = lint_file(
      "src/support/src/alloc.cpp", "void* operator new(std::size_t n);\n");
  EXPECT_FALSE(has_rule(findings, "raw-alloc"));
}

TEST(RawAlloc, OutsideSrcIsOutOfScope) {
  const auto findings = lint_file("tests/x.cpp", "int* p = new int(3);\n");
  EXPECT_FALSE(has_rule(findings, "raw-alloc"));
}

// ------------------------------------------------------------------
// wire-format

constexpr const char* kGoodWireStruct =
    "#pragma once\n"
    "struct GoodRecord {\n"
    "  std::uint64_t target = 0;\n"
    "  std::int16_t value = 0;\n"
    "  static constexpr std::size_t kWireSize = 8 + 2;\n"
    "};\n"
    "static_assert(std::is_trivially_copyable_v<GoodRecord>);\n";

TEST(WireFormat, CoveredFixedWidthStructPasses) {
  const auto findings =
      lint_file("src/para/include/retra/para/x.hpp", kGoodWireStruct);
  EXPECT_FALSE(has_rule(findings, "wire-format"));
}

TEST(WireFormat, MissingTriviallyCopyableAssertFails) {
  const auto findings = lint_file("src/para/include/retra/para/x.hpp",
                                  "#pragma once\n"
                                  "struct BadRecord {\n"
                                  "  std::uint64_t target = 0;\n"
                                  "  static constexpr std::size_t kWireSize = 8;\n"
                                  "};\n");
  ASSERT_TRUE(has_rule(findings, "wire-format"));
}

TEST(WireFormat, NonFixedWidthFieldFails) {
  const auto findings = lint_file(
      "src/para/include/retra/para/x.hpp",
      "#pragma once\n"
      "struct BadRecord {\n"
      "  int target = 0;\n"
      "  static constexpr std::size_t kWireSize = 4;\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<BadRecord>);\n");
  EXPECT_EQ(count_rule(findings, "wire-format"), 1);
}

TEST(WireFormat, StructWithoutWireSizeIsNotAWireStruct) {
  const auto findings = lint_file("src/para/include/retra/para/x.hpp",
                                  "#pragma once\n"
                                  "struct Stats {\n"
                                  "  int anything = 0;\n"
                                  "};\n");
  EXPECT_FALSE(has_rule(findings, "wire-format"));
}

TEST(WireFormat, MethodBodiesAreNotFields) {
  const auto findings = lint_file(
      "src/para/include/retra/para/x.hpp",
      "#pragma once\n"
      "struct GoodRecord {\n"
      "  std::uint64_t target = 0;\n"
      "  static constexpr std::size_t kWireSize = 8;\n"
      "  static GoodRecord decode(Reader& r) {\n"
      "    GoodRecord rec;\n"
      "    rec.target = r.u64();\n"
      "    return rec;\n"
      "  }\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<GoodRecord>);\n");
  EXPECT_FALSE(has_rule(findings, "wire-format"));
}

// ------------------------------------------------------------------
// db-level-residency

TEST(DbLevelResidency, DatabaseLevelCallInEngineCodeFails) {
  const auto findings = lint_file(
      "src/para/src/x.cpp", "auto& v = database.level(3);\n");
  EXPECT_TRUE(has_rule(findings, "db-level-residency"));
}

TEST(DbLevelResidency, PointerReceiverAndQualifiedNameFail) {
  EXPECT_TRUE(has_rule(
      lint_file("src/para/include/retra/para/x.hpp",
                "#pragma once\nauto& v = lower_db->level(n);\n"),
      "db-level-residency"));
  EXPECT_TRUE(has_rule(
      lint_file("src/para/src/x.cpp",
                "using db::Database::level;\n"),
      "db-level-residency"));
}

TEST(DbLevelResidency, GameFamilyLevelAccessorPasses) {
  const auto findings = lint_file(
      "src/para/src/x.cpp", "decltype(auto) game = family.level(n);\n");
  EXPECT_FALSE(has_rule(findings, "db-level-residency"));
}

TEST(DbLevelResidency, OutsideEngineCodeIsOutOfScope) {
  const auto findings = lint_file(
      "src/serve/src/x.cpp", "auto& v = database.level(3);\n");
  EXPECT_FALSE(has_rule(findings, "db-level-residency"));
}

TEST(DbLevelResidency, MentionInCommentIsIgnored) {
  const auto findings = lint_file(
      "src/para/src/x.cpp", "// database.level(3) would bypass the store\n");
  EXPECT_FALSE(has_rule(findings, "db-level-residency"));
}

// ------------------------------------------------------------------
// simd-containment

TEST(SimdContainment, IntrinsicCallOutsideExecFails) {
  const auto findings = lint_file(
      "src/para/src/x.cpp",
      "__m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));\n");
  EXPECT_TRUE(has_rule(findings, "simd-containment"));
}

TEST(SimdContainment, BuiltinIa32OutsideExecFails) {
  const auto findings = lint_file(
      "src/msg/src/x.cpp", "__builtin_ia32_pause();\n");
  EXPECT_TRUE(has_rule(findings, "simd-containment"));
}

TEST(SimdContainment, IntrinsicsHeaderOutsideExecFails) {
  EXPECT_TRUE(has_rule(
      lint_file("src/db/src/x.cpp", "#include <immintrin.h>\n"),
      "simd-containment"));
  EXPECT_TRUE(has_rule(
      lint_file("bench/bench_x.cpp", "#include <emmintrin.h>\n"),
      "simd-containment"));
  EXPECT_TRUE(has_rule(
      lint_file("tools/x/main.cpp", "#include <arm_neon.h>\n"),
      "simd-containment"));
}

TEST(SimdContainment, InsideExecIsOutOfScope) {
  const auto findings = lint_file(
      "src/exec/src/simd.cpp",
      "#include <immintrin.h>\n__m256i v = _mm256_set1_epi16(3);\n");
  EXPECT_FALSE(has_rule(findings, "simd-containment"));
}

TEST(SimdContainment, WrapperCallsAndMentionsInCommentsPass) {
  const auto findings = lint_file(
      "src/para/include/retra/para/x.hpp",
      "#pragma once\n"
      "#include \"retra/exec/simd.hpp\"\n"
      "// _mm256_blendv_epi8 would be banned here\n"
      "auto n = retra::exec::simd::replace_matching(p, len, m, r);\n");
  EXPECT_FALSE(has_rule(findings, "simd-containment"));
}

TEST(SimdContainment, AllowDirectiveSuppresses) {
  const auto findings = lint_file(
      "src/support/src/x.cpp",
      "// retra-lint: allow(simd-containment)\n__builtin_ia32_pause();\n");
  EXPECT_FALSE(has_rule(findings, "simd-containment"));
}

// ------------------------------------------------------------------
// allow-comment escape

TEST(AllowDirective, SameLineSuppresses) {
  const auto findings = lint_file(
      "src/db/src/x.cpp",
      "int* p = new int(3);  // retra-lint: allow(raw-alloc)\n");
  EXPECT_FALSE(has_rule(findings, "raw-alloc"));
}

TEST(AllowDirective, PreviousLineSuppresses) {
  const auto findings =
      lint_file("src/db/src/x.cpp",
                "// retra-lint: allow(raw-alloc)\nint* p = new int(3);\n");
  EXPECT_FALSE(has_rule(findings, "raw-alloc"));
}

TEST(AllowDirective, OnlySuppressesTheNamedRule) {
  const auto findings =
      lint_file("src/msg/src/x.cpp",
                "// retra-lint: allow(raw-alloc)\nint r = std::rand();\n");
  EXPECT_TRUE(has_rule(findings, "determinism"));
}

// ------------------------------------------------------------------
// finding metadata

TEST(Findings, CarryFileLineAndRule) {
  const auto findings =
      lint_file("src/db/src/x.cpp", "int a;\nint* p = new int(3);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/db/src/x.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "raw-alloc");
}

}  // namespace
}  // namespace retra::lint

// Tests of the observability layer: registry semantics, JSON round-trips,
// docs coverage of the metric catalog, and agreement between the obs
// counters and the per-level statistics the drivers report.
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/obs/json.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/para/parallel_solver.hpp"

namespace retra {
namespace {

using obs::Id;

// --- catalog -------------------------------------------------------------

TEST(Catalog, PositionsMatchIds) {
  EXPECT_EQ(obs::kCatalog.size(), obs::kMetricCount);
  EXPECT_EQ(obs::desc(Id::kCombinerRecords).name, "combiner.records");
  EXPECT_EQ(obs::desc(Id::kDriverLevelSeconds).name, "driver.level_seconds");
  EXPECT_EQ(obs::desc(Id::kDriverRanks).kind, obs::Kind::kGauge);
  EXPECT_EQ(obs::desc(Id::kCombinerRecordsPerMessage).kind,
            obs::Kind::kHistogram);
}

TEST(Catalog, EveryEntryIsFullyDescribed) {
  for (const obs::Desc& d : obs::kCatalog) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_FALSE(d.unit.empty()) << d.name;
    EXPECT_FALSE(d.component.empty()) << d.name;
    EXPECT_FALSE(d.table.empty()) << d.name;
    EXPECT_FALSE(d.help.empty()) << d.name;
  }
}

TEST(Catalog, HistogramBucketsAreLog2) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket((1ull << 31) - 1), 31u);
  EXPECT_EQ(obs::histogram_bucket(1ull << 31), 32u);
  // Values beyond the last bucket's range clamp instead of overflowing.
  EXPECT_EQ(obs::histogram_bucket(~0ull), obs::kHistogramBuckets - 1);
}

// --- registry semantics --------------------------------------------------

TEST(Registry, CounterGaugeTimerHistogram) {
  obs::reset();
  obs::Registry& reg = obs::Registry::instance();
  reg.add(Id::kCombinerRecords, 5);
  reg.add(Id::kCombinerRecords);
  reg.set(Id::kDriverRanks, 64);
  reg.set(Id::kDriverRanks, 16);  // gauges keep the latest value
  reg.add_time_ns(Id::kCheckpointSaveSeconds, 1'500'000'000);
  reg.add_time_ns(Id::kCheckpointSaveSeconds, 500'000'000);
  reg.observe(Id::kCombinerRecordsPerMessage, 0);
  reg.observe(Id::kCombinerRecordsPerMessage, 3);
  reg.observe(Id::kCombinerRecordsPerMessage, 400);

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap[Id::kCombinerRecords].value, 6u);
  EXPECT_EQ(snap[Id::kDriverRanks].value, 16u);
  EXPECT_EQ(snap[Id::kCheckpointSaveSeconds].value, 2'000'000'000u);
  EXPECT_EQ(snap[Id::kCheckpointSaveSeconds].count, 2u);
  EXPECT_DOUBLE_EQ(snap[Id::kCheckpointSaveSeconds].seconds(), 2.0);
  const obs::MetricValue& hist = snap[Id::kCombinerRecordsPerMessage];
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.sum, 403u);
  EXPECT_DOUBLE_EQ(hist.mean(), 403.0 / 3.0);
  EXPECT_EQ(hist.buckets[obs::histogram_bucket(0)], 1u);
  EXPECT_EQ(hist.buckets[obs::histogram_bucket(3)], 1u);
  EXPECT_EQ(hist.buckets[obs::histogram_bucket(400)], 1u);
  obs::reset();
}

TEST(Registry, SnapshotDeltaSubtractsCountersKeepsGauges) {
  obs::reset();
  obs::Registry& reg = obs::Registry::instance();
  reg.add(Id::kEngineZeroFilled, 10);
  reg.set(Id::kDriverRanks, 4);
  const obs::Snapshot before = obs::snapshot();
  reg.add(Id::kEngineZeroFilled, 7);
  reg.set(Id::kDriverRanks, 8);
  reg.observe(Id::kCombinerRecordsPerMessage, 5);
  const obs::Snapshot delta = obs::snapshot() - before;
  EXPECT_EQ(delta[Id::kEngineZeroFilled].value, 7u);
  EXPECT_EQ(delta[Id::kDriverRanks].value, 8u);  // latest, not difference
  EXPECT_EQ(delta[Id::kCombinerRecordsPerMessage].count, 1u);
  obs::reset();
}

TEST(Registry, ConcurrentIncrementsAreExact) {
  obs::reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      obs::Registry& reg = obs::Registry::instance();
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        reg.add(Id::kCombinerRecords);
        reg.observe(Id::kCombinerRecordsPerMessage, i & 1023);
        reg.add_time_ns(Id::kDriverLevelSeconds, 3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::Snapshot snap = obs::snapshot();
  const std::uint64_t total = kThreads * kIncrements;
  EXPECT_EQ(snap[Id::kCombinerRecords].value, total);
  EXPECT_EQ(snap[Id::kCombinerRecordsPerMessage].count, total);
  EXPECT_EQ(snap[Id::kDriverLevelSeconds].value, 3 * total);
  EXPECT_EQ(snap[Id::kDriverLevelSeconds].count, total);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : snap[Id::kCombinerRecordsPerMessage].buckets) {
    bucket_sum += b;
  }
  EXPECT_EQ(bucket_sum, total);
  obs::reset();
}

// --- JSON ----------------------------------------------------------------

TEST(Json, WriterEscapesAndNests) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("quote\"back\\slash", "line\nbreak\ttab");
  w.key("list").begin_array().value(std::uint64_t{1}).value(2.5).end_array();
  w.end_object();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(w.str(), doc, &error)) << error;
  const obs::JsonValue* s = doc.find("quote\"back\\slash");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "line\nbreak\ttab");
  const obs::JsonValue* list = doc.find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 2u);
  EXPECT_TRUE(list->array[0].is_unsigned);
  EXPECT_DOUBLE_EQ(list->array[1].number, 2.5);
}

TEST(Json, LargeIntegersSurviveRoundTrip) {
  const std::uint64_t big = (1ull << 63) + 12345;
  obs::JsonWriter w;
  w.begin_object().kv("big", big).end_object();
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(w.str(), doc, nullptr));
  const obs::JsonValue* v = doc.find("big");
  ASSERT_NE(v, nullptr);
  ASSERT_TRUE(v->is_unsigned);
  EXPECT_EQ(v->unsigned_value, big);
}

TEST(Json, ParserRejectsMalformedInput) {
  obs::JsonValue doc;
  std::string error;
  EXPECT_FALSE(obs::json_parse("", doc, &error));
  EXPECT_FALSE(obs::json_parse("{", doc, &error));
  EXPECT_FALSE(obs::json_parse("{\"a\":}", doc, &error));
  EXPECT_FALSE(obs::json_parse("[1,]", doc, &error));
  EXPECT_FALSE(obs::json_parse("\"unterminated", doc, &error));
  EXPECT_FALSE(obs::json_parse("{} trailing", doc, &error));
  EXPECT_FALSE(obs::json_parse("nul", doc, &error));
  // Depth guard: deeper nesting than the parser's limit is an error, not a
  // stack overflow.
  EXPECT_FALSE(
      obs::json_parse(std::string(200, '[') + std::string(200, ']'), doc,
                      &error));
}

TEST(Json, MetricsDumpParsesAndCoversCatalog) {
  obs::reset();
  obs::Registry::instance().add(Id::kEngineAssignments, 42);
  const std::string json = obs::dump_json(obs::snapshot());
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json, doc, &error)) << error;
  const obs::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "retra-metrics-v1");
  const obs::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->array.size(), obs::kMetricCount);
  for (std::size_t i = 0; i < obs::kMetricCount; ++i) {
    const obs::JsonValue* name = metrics->array[i].find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->string, obs::kCatalog[i].name);
  }
  obs::reset();
}

// --- documentation contract ----------------------------------------------

// Every runtime metric must be documented in docs/METRICS.md (the path is
// injected by CMake).  The check is on the backticked metric name, so the
// doc cannot drift silently when the catalog grows.
TEST(Docs, EveryMetricAppearsInMetricsDoc) {
  std::ifstream in(RETRA_METRICS_DOC);
  ASSERT_TRUE(in.good()) << "cannot open " << RETRA_METRICS_DOC;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  for (const obs::Desc& d : obs::kCatalog) {
    const std::string token = "`" + std::string(d.name) + "`";
    EXPECT_NE(doc.find(token), std::string::npos)
        << "metric " << d.name << " is not documented in docs/METRICS.md";
  }
  EXPECT_NE(doc.find("retra-metrics-v1"), std::string::npos);
  EXPECT_NE(doc.find("retra-bench-v1"), std::string::npos);
}

// --- driver agreement ----------------------------------------------------

// The obs counters and the LevelRunInfo totals are produced by the same
// finalize_level_info call, so a build's snapshot delta must agree exactly
// with the per-level statistics the drivers return.  Under
// -DRETRA_METRICS=OFF the macros publish nothing, so the agreement only
// holds (and is only checked) in the instrumented build.
#if RETRA_METRICS_ENABLED
TEST(DriverAgreement, ObsDeltaMatchesLevelRunInfo) {
  const obs::Snapshot before = obs::snapshot();
  para::ParallelConfig config;
  config.ranks = 3;
  config.combine_bytes = 256;
  const para::ParallelResult result =
      para::build_parallel(game::AwariFamily{}, 5, config);
  const obs::Snapshot delta = obs::snapshot() - before;

  para::EngineStats total;
  std::uint64_t positions = 0, rounds = 0;
  for (const para::LevelRunInfo& info : result.levels) {
    total += info.total;
    positions += info.size;
    rounds += info.rounds;
  }
  EXPECT_EQ(delta[Id::kEngineUpdatesLocal].value, total.updates_local);
  EXPECT_EQ(delta[Id::kEngineUpdatesRemote].value, total.updates_remote);
  EXPECT_EQ(delta[Id::kEngineLookupsLocal].value, total.lookups_local);
  EXPECT_EQ(delta[Id::kEngineLookupsRemote].value, total.lookups_remote);
  EXPECT_EQ(delta[Id::kEngineRepliesSent].value, total.replies_sent);
  EXPECT_EQ(delta[Id::kEngineAssignments].value, total.assignments);
  EXPECT_EQ(delta[Id::kEngineZeroFilled].value, total.zero_filled);
  EXPECT_EQ(delta[Id::kEngineMessagesSent].value, total.messages_sent);
  EXPECT_EQ(delta[Id::kEnginePayloadBytes].value, total.payload_bytes);
  EXPECT_EQ(delta[Id::kDriverLevelsBuilt].value, result.levels.size());
  EXPECT_EQ(delta[Id::kDriverPositions].value, positions);
  EXPECT_EQ(delta[Id::kDriverRounds].value, rounds);
  EXPECT_EQ(delta[Id::kDriverRanks].value, 3u);
  // Without replication every combiner belongs to an engine, so the
  // combiner-level counters agree with the engine totals too.
  EXPECT_EQ(delta[Id::kCombinerMessages].value, total.messages_sent);
  EXPECT_EQ(delta[Id::kCombinerPayloadBytes].value, total.payload_bytes);
  EXPECT_EQ(delta[Id::kCombinerRecords].value, total.remote_records());
  EXPECT_EQ(delta[Id::kCombinerRecordsPerMessage].count,
            total.messages_sent);
}
#endif  // RETRA_METRICS_ENABLED

// --- bench artifacts -----------------------------------------------------

TEST(BenchArtifact, WriteValidateRoundTrip) {
  const sim::ClusterModel model;
  const obs::Snapshot before = obs::snapshot();
  const para::SimBuildResult run = bench::simulate_build(4, 2, 512, model);
  const obs::Snapshot delta = obs::snapshot() - before;
  bench::BenchRunMeta meta;
  meta.suite = "test";
  meta.bench = "test_obs";
  meta.max_level = 4;
  meta.ranks = 2;
  meta.combine_bytes = 512;
  const std::string json = bench::bench_artifact_json(meta, model, run, delta);
  std::string error;
  EXPECT_TRUE(bench::validate_bench_artifact(json, &error)) << error;

  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(json, doc, &error)) << error;
  const obs::JsonValue* levels = doc.find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_EQ(levels->array.size(), run.levels.size());
  const obs::JsonValue* top_messages =
      levels->array.back().find("messages");
  ASSERT_NE(top_messages, nullptr);
  EXPECT_EQ(top_messages->unsigned_value,
            run.levels.back().total.messages_sent);
}

TEST(BenchArtifact, ValidatorRejectsCorruptDocuments) {
  std::string error;
  EXPECT_FALSE(bench::validate_bench_artifact("[]", &error));
  EXPECT_FALSE(bench::validate_bench_artifact("{\"schema\":\"x\"}", &error));
  EXPECT_FALSE(bench::validate_bench_artifact("not json at all", &error));

  // A real artifact stops validating when a required level field is
  // renamed or a metric vanishes.
  const sim::ClusterModel model;
  const para::SimBuildResult run = bench::simulate_build(3, 2, 512, model);
  bench::BenchRunMeta meta;
  meta.suite = "test";
  meta.bench = "test_obs";
  meta.max_level = 3;
  meta.ranks = 2;
  meta.combine_bytes = 512;
  const std::string good =
      bench::bench_artifact_json(meta, model, run, obs::snapshot());
  ASSERT_TRUE(bench::validate_bench_artifact(good, &error)) << error;

  std::string renamed = good;
  const std::size_t pos = renamed.find("\"updates_local\"");
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, 15, "\"updates_LOCAL\"");
  EXPECT_FALSE(bench::validate_bench_artifact(renamed, &error));

  std::string missing_metric = good;
  const std::size_t mpos = missing_metric.find("\"combiner.records\"");
  ASSERT_NE(mpos, std::string::npos);
  missing_metric.replace(mpos, 18, "\"combiner.recordz\"");
  EXPECT_FALSE(bench::validate_bench_artifact(missing_metric, &error));
}

}  // namespace
}  // namespace retra

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "retra/game/awari_level.hpp"
#include "retra/para/sim_build.hpp"

namespace retra::sim {
namespace {

TEST(Trace, RoundsAreContiguousAndConsistent) {
  para::ParallelConfig config;
  config.ranks = 4;
  TraceSink trace;
  const auto run = para::build_parallel_simulated(
      game::AwariFamily{}, 5, config, ClusterModel{}, &trace);
  ASSERT_GT(trace.size(), 0u);

  std::uint64_t total_messages = 0;
  double prev_end = 0.0;
  for (const RoundTrace& row : trace.rows()) {
    EXPECT_GE(row.end_s, row.start_s);
    EXPECT_EQ(row.rank_busy_s.size(), 4u);
    for (const double busy : row.rank_busy_s) {
      EXPECT_GE(busy, 0.0);
      EXPECT_LE(busy, row.end_s - row.start_s + 1e-9);
    }
    total_messages += row.messages;
    // Levels restart the clock at the previous level's end... each level
    // starts at 0 virtual seconds, so only require monotonicity within a
    // level (start never before the previous round's start when the
    // round counter grows).
    if (row.round > 1) {
      EXPECT_GE(row.start_s + 1e-12, prev_end * 0);
    }
    prev_end = row.end_s;
  }
  std::uint64_t expected_messages = 0;
  for (const auto& timing : run.timings) expected_messages += timing.messages;
  EXPECT_EQ(total_messages, expected_messages);
}

TEST(Trace, CsvWritesAndParses) {
  para::ParallelConfig config;
  config.ranks = 2;
  TraceSink trace;
  (void)para::build_parallel_simulated(game::AwariFamily{}, 3, config,
                                       ClusterModel{}, &trace);
  const std::string path =
      (std::filesystem::temp_directory_path() / "retra_trace_test.csv")
          .string();
  trace.write_csv(path);

  std::ifstream file(path);
  std::string header;
  ASSERT_TRUE(std::getline(file, header));
  EXPECT_NE(header.find("round,start_s,end_s"), std::string::npos);
  EXPECT_NE(header.find("busy_rank1_s"), std::string::npos);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(file, line)) ++lines;
  EXPECT_EQ(lines, trace.size());
  std::remove(path.c_str());
}

TEST(Trace, NullSinkIsNoOp) {
  para::ParallelConfig config;
  config.ranks = 2;
  const auto a = para::build_parallel_simulated(game::AwariFamily{}, 3,
                                                config, ClusterModel{});
  TraceSink trace;
  const auto b = para::build_parallel_simulated(
      game::AwariFamily{}, 3, config, ClusterModel{}, &trace);
  // Tracing must not perturb the simulation.
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timings[i].time_s, b.timings[i].time_s);
  }
  EXPECT_EQ(a.database->gather(), b.database->gather());
}

}  // namespace
}  // namespace retra::sim

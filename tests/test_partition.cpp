#include <gtest/gtest.h>

#include <vector>

#include "retra/para/partition.hpp"

namespace retra::para {
namespace {

struct Case {
  PartitionScheme scheme;
  std::uint64_t size;
  int ranks;
  std::uint64_t block;
};

class PartitionInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(PartitionInvariants, OwnerLocalGlobalAreConsistent) {
  const Case c = GetParam();
  const Partition partition(c.scheme, c.size, c.ranks, c.block);
  std::vector<std::uint64_t> counted(static_cast<std::size_t>(c.ranks), 0);
  for (std::uint64_t i = 0; i < c.size; ++i) {
    const int owner = partition.owner(i);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, c.ranks);
    const std::uint64_t local = partition.to_local(i);
    ASSERT_EQ(partition.to_global(owner, local), i);
    ASSERT_LT(local, partition.local_size(owner));
    ++counted[static_cast<std::size_t>(owner)];
  }
  for (int r = 0; r < c.ranks; ++r) {
    EXPECT_EQ(counted[static_cast<std::size_t>(r)], partition.local_size(r))
        << "rank " << r;
  }
}

TEST_P(PartitionInvariants, LocalSizesSumToTotal) {
  const Case c = GetParam();
  const Partition partition(c.scheme, c.size, c.ranks, c.block);
  std::uint64_t total = 0;
  for (int r = 0; r < c.ranks; ++r) total += partition.local_size(r);
  EXPECT_EQ(total, c.size);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionInvariants,
    ::testing::Values(
        Case{PartitionScheme::kBlock, 100, 7, 1},
        Case{PartitionScheme::kBlock, 1, 4, 1},
        Case{PartitionScheme::kBlock, 4096, 64, 1},
        Case{PartitionScheme::kCyclic, 100, 7, 1},
        Case{PartitionScheme::kCyclic, 3, 8, 1},
        Case{PartitionScheme::kCyclic, 4096, 64, 1},
        Case{PartitionScheme::kBlockCyclic, 100, 7, 4},
        Case{PartitionScheme::kBlockCyclic, 1000, 3, 16},
        Case{PartitionScheme::kBlockCyclic, 4097, 64, 32},
        Case{PartitionScheme::kBlockCyclic, 5, 2, 64}));

TEST(Partition, BlockIsContiguous) {
  const Partition partition(PartitionScheme::kBlock, 100, 4);
  EXPECT_EQ(partition.owner(0), 0);
  EXPECT_EQ(partition.owner(24), 0);
  EXPECT_EQ(partition.owner(25), 1);
  EXPECT_EQ(partition.owner(99), 3);
}

TEST(Partition, CyclicDealsRoundRobin) {
  const Partition partition(PartitionScheme::kCyclic, 100, 4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(partition.owner(i), static_cast<int>(i % 4));
  }
}

TEST(Partition, BlockCyclicDealsBlocks) {
  const Partition partition(PartitionScheme::kBlockCyclic, 100, 2, 8);
  EXPECT_EQ(partition.owner(0), 0);
  EXPECT_EQ(partition.owner(7), 0);
  EXPECT_EQ(partition.owner(8), 1);
  EXPECT_EQ(partition.owner(15), 1);
  EXPECT_EQ(partition.owner(16), 0);
}

TEST(Partition, MoreRanksThanPositions) {
  const Partition partition(PartitionScheme::kBlock, 2, 8);
  std::uint64_t total = 0;
  for (int r = 0; r < 8; ++r) total += partition.local_size(r);
  EXPECT_EQ(total, 2u);
}

TEST(Partition, SchemeNames) {
  EXPECT_STREQ(scheme_name(PartitionScheme::kBlock), "block");
  EXPECT_STREQ(scheme_name(PartitionScheme::kCyclic), "cyclic");
  EXPECT_STREQ(scheme_name(PartitionScheme::kBlockCyclic), "block-cyclic");
}

}  // namespace
}  // namespace retra::para

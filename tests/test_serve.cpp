// The query-serving layer: ValueSource backends, lazy residency, LRU
// eviction, and metrics reconciliation.
//
// The anchor is the backend-agreement sweep: every value of the full
// awari database up to 6 stones must be identical through the dense
// adapter, the bit-packed adapter, a file served from either on-disk
// format, and a budget-squeezed QueryService — the serving stack may
// change representation, never answers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "bench_common.hpp"
#include "retra/db/compact.hpp"
#include "retra/db/db_io.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/serve/query_service.hpp"

namespace retra::serve {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The solved awari database shared by the agreement tests; built once.
const db::Database& solved() {
  static const db::Database database =
      ra::build_database(game::AwariFamily{}, 6);
  return database;
}

/// Saves `solved()` to a scratch file in the requested format.
std::string save_solved(const char* name, bool pack) {
  const std::string path = temp_path(name);
  db::Format format;
  format.version = pack ? 2 : 1;
  db::save(solved(), path, format);
  return path;
}

/// Saves `solved()` as RTRADB03 with the given block geometry.
std::string save_solved_compressed(const char* name,
                                   std::uint32_t block_positions) {
  const std::string path = temp_path(name);
  db::save(solved(), path,
           db::Format{.version = 3, .block_positions = block_positions});
  return path;
}

void expect_full_agreement(ValueSource& source, const db::Database& oracle) {
  ASSERT_EQ(source.num_levels(), oracle.num_levels());
  for (int level = 0; level < oracle.num_levels(); ++level) {
    ASSERT_EQ(source.level_size(level), oracle.level(level).size());
    // level_values() exercises the batched path for the whole level.
    EXPECT_EQ(source.level_values(level), oracle.level(level))
        << "level " << level;
  }
}

TEST(ValueSource, DenseAdapterAgreesEverywhere) {
  DatabaseSource source(solved());
  expect_full_agreement(source, solved());
}

TEST(ValueSource, CompactAdapterAgreesEverywhere) {
  const db::CompactDatabase compact(solved());
  CompactSource source(compact);
  expect_full_agreement(source, solved());
}

TEST(ValueSource, FileSourceAgreesOnBothFormats) {
  for (const bool pack : {false, true}) {
    const std::string path = save_solved("retra_serve_agree.db", pack);
    auto opened = FileSource::open(path);
    ASSERT_TRUE(opened.ok) << opened.error;
    expect_full_agreement(*opened.source, solved());
    std::remove(path.c_str());
  }
}

TEST(ValueSource, FileSourceAgreesOnCompressedFormat) {
  const std::string path =
      save_solved_compressed("retra_serve_agree_c.db", 1024);
  auto opened = FileSource::open(path);
  ASSERT_TRUE(opened.ok) << opened.error;
  ASSERT_TRUE(opened.source->blocked());
  expect_full_agreement(*opened.source, solved());
  std::remove(path.c_str());
}

TEST(ValueSource, QueryServiceCompressedUnderBudgetAgreesEverywhere) {
  // The fifth backend of the agreement sweep: a block-compressed file
  // behind a budget that holds only a handful of blocks, so the sweep
  // faults, decodes and evicts blocks constantly — agreement proves the
  // block cache never changes an answer.
  const std::string path =
      save_solved_compressed("retra_serve_budget_c.db", 1024);
  QueryServiceConfig config;
  config.budget_bytes = 2048;
  auto opened = QueryService::open(path, config);
  ASSERT_TRUE(opened.ok) << opened.error;
  ASSERT_TRUE(opened.service->blocked());
  expect_full_agreement(*opened.service, solved());
  const QueryService::Stats& stats = opened.service->stats();
  EXPECT_GT(stats.block_faults, 0u);
  EXPECT_GT(stats.block_evictions, 0u);
  // Block-granular files move the block counters, never the level ones.
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  std::remove(path.c_str());
}

TEST(ValueSource, QueryServiceUnderBudgetAgreesEverywhere) {
  const std::string path = save_solved("retra_serve_budget.db", true);
  // A budget that fits only a sliver of the file: every level sweep
  // evicts others, so agreement here proves fault/evict round-trips.
  QueryServiceConfig config;
  config.budget_bytes = 4096;
  auto opened = QueryService::open(path, config);
  ASSERT_TRUE(opened.ok) << opened.error;
  expect_full_agreement(*opened.service, solved());
  EXPECT_GT(opened.service->stats().evictions, 0u);
  std::remove(path.c_str());
}

TEST(ValueSource, BatchedMatchesSingleLookups) {
  const std::string path = save_solved("retra_serve_batch.db", true);
  auto batched = QueryService::open(path);
  auto single = QueryService::open(path);
  ASSERT_TRUE(batched.ok && single.ok);
  for (int level = 0; level < solved().num_levels(); ++level) {
    // A strided sample, batched in one call vs looked up one by one.
    std::vector<idx::Index> indices;
    for (idx::Index i = 0; i < solved().level(level).size(); i += 7) {
      indices.push_back(i);
    }
    std::vector<db::Value> out(indices.size());
    batched.service->values(level, indices, out);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(out[i], single.service->value(level, indices[i]));
    }
  }
  // Both services answered the same positions; the batched one did it in
  // one values() call per level.
  EXPECT_EQ(batched.service->stats().lookups,
            single.service->stats().lookups);
  EXPECT_EQ(batched.service->stats().batches,
            static_cast<std::uint64_t>(solved().num_levels()));
  std::remove(path.c_str());
}

TEST(ValueSource, CoversMatchesStoredLevels) {
  DatabaseSource source(solved());
  EXPECT_TRUE(source.covers(0));
  EXPECT_TRUE(source.covers(6));
  EXPECT_FALSE(source.covers(7));
  EXPECT_FALSE(source.covers(-1));
}

TEST(FileSource, FaultsLazilyAndDropsExplicitly) {
  const std::string path = save_solved("retra_serve_lazy.db", true);
  auto opened = FileSource::open(path);
  ASSERT_TRUE(opened.ok) << opened.error;
  FileSource& source = *opened.source;
  EXPECT_EQ(source.resident_bytes(), 0u);
  EXPECT_EQ(source.faults(), 0u);
  for (int level = 0; level < source.num_levels(); ++level) {
    EXPECT_FALSE(source.is_resident(level));
  }

  (void)source.value(5, 0);
  EXPECT_TRUE(source.is_resident(5));
  EXPECT_EQ(source.faults(), 1u);
  EXPECT_EQ(source.resident_bytes(), source.level_bytes(5));

  (void)source.value(5, 1);  // same level: no second fault
  EXPECT_EQ(source.faults(), 1u);

  source.drop_level(5);
  EXPECT_FALSE(source.is_resident(5));
  EXPECT_EQ(source.resident_bytes(), 0u);
  (void)source.value(5, 0);  // faults back in
  EXPECT_EQ(source.faults(), 2u);
  std::remove(path.c_str());
}

TEST(FileSource, FaultsSingleBlocksOnCompressedFiles) {
  const std::string path =
      save_solved_compressed("retra_serve_lazy_c.db", 512);
  auto opened = FileSource::open(path);
  ASSERT_TRUE(opened.ok) << opened.error;
  FileSource& source = *opened.source;
  ASSERT_TRUE(source.blocked());
  ASSERT_GE(source.block_count(6), 2);
  EXPECT_EQ(source.resident_bytes(), 0u);

  // A point lookup faults exactly one block, not the level.
  (void)source.value(6, 0);
  EXPECT_EQ(source.faults(), 1u);
  EXPECT_TRUE(source.is_block_resident(6, 0));
  EXPECT_FALSE(source.is_block_resident(6, 1));
  EXPECT_FALSE(source.is_resident(6));
  EXPECT_EQ(source.resident_bytes(), source.block_bytes(6, 0));

  // Another position in the same block: no second fault.
  (void)source.value(6, 1);
  EXPECT_EQ(source.faults(), 1u);

  // A position in the next block faults just that block.
  (void)source.value(6, source.block_begin(6, 1));
  EXPECT_EQ(source.faults(), 2u);
  EXPECT_EQ(source.resident_bytes(),
            source.block_bytes(6, 0) + source.block_bytes(6, 1));

  source.drop_block(6, 0);
  EXPECT_FALSE(source.is_block_resident(6, 0));
  EXPECT_TRUE(source.is_block_resident(6, 1));
  EXPECT_EQ(source.resident_bytes(), source.block_bytes(6, 1));
  std::remove(path.c_str());
}

TEST(FileSource, RejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(FileSource::open(temp_path("retra_serve_missing.db")).ok);
  const std::string path = temp_path("retra_serve_badmagic.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTADB00garbage", f);
    std::fclose(f);
  }
  auto opened = FileSource::open(path);
  EXPECT_FALSE(opened.ok);
  EXPECT_NE(opened.error.find("magic"), std::string::npos) << opened.error;
  std::remove(path.c_str());
}

TEST(QueryService, EvictionOrderIsDeterministicLru) {
  const std::string path = save_solved("retra_serve_lru.db", true);
  // Budget sized for levels 4+5+6 (683+2184+6188 bytes) but not a fourth
  // level on top.
  auto opened = QueryService::open(path);
  ASSERT_TRUE(opened.ok) << opened.error;
  const std::uint64_t budget = opened.service->index().levels[4].payload_bytes +
                               opened.service->index().levels[5].payload_bytes +
                               opened.service->index().levels[6].payload_bytes;
  QueryServiceConfig config;
  config.budget_bytes = budget;
  auto squeezed = QueryService::open(path, config);
  ASSERT_TRUE(squeezed.ok) << squeezed.error;
  QueryService& service = *squeezed.service;

  (void)service.value(4, 0);
  (void)service.value(5, 0);
  (void)service.value(6, 0);
  EXPECT_EQ(service.resident_levels(), (std::vector<int>{6, 5, 4}));
  EXPECT_EQ(service.stats().evictions, 0u);

  // Touch 4 again, then fault level 3: the LRU victim must now be 5.
  (void)service.value(4, 1);
  (void)service.value(3, 0);
  EXPECT_EQ(service.resident_levels(), (std::vector<int>{3, 4, 6}));
  EXPECT_EQ(service.stats().evictions, 1u);

  // Re-running the same query sequence on a fresh service reproduces the
  // same residency, byte for byte: eviction depends only on the queries.
  auto replay = QueryService::open(path, config);
  ASSERT_TRUE(replay.ok);
  (void)replay.service->value(4, 0);
  (void)replay.service->value(5, 0);
  (void)replay.service->value(6, 0);
  (void)replay.service->value(4, 1);
  (void)replay.service->value(3, 0);
  EXPECT_EQ(replay.service->resident_levels(), service.resident_levels());
  EXPECT_EQ(replay.service->stats().resident_bytes,
            service.stats().resident_bytes);
  std::remove(path.c_str());
}

TEST(QueryService, BlockEvictionOrderIsDeterministicLru) {
  const std::string path =
      save_solved_compressed("retra_serve_blocklru.db", 512);
  auto probe = QueryService::open(path);
  ASSERT_TRUE(probe.ok) << probe.error;
  QueryService& probe_service = *probe.service;
  ASSERT_TRUE(probe_service.blocked());
  ASSERT_GE(probe_service.block_count(6), 4);
  // Every awari level through 6 stones packs at 4 bits, so a full block
  // decodes to 512 / 2 bytes; budget three of them, not a fourth.
  ASSERT_EQ(probe_service.index().levels[6].bits, 4);
  const std::uint64_t block_bytes = 512 / 2;
  QueryServiceConfig config;
  config.budget_bytes = 3 * block_bytes;
  auto squeezed = QueryService::open(path, config);
  ASSERT_TRUE(squeezed.ok) << squeezed.error;
  QueryService& service = *squeezed.service;

  const auto touch_block = [&](QueryService& s, int block) {
    (void)s.value(6, s.block_begin(6, block));
  };
  touch_block(service, 0);
  touch_block(service, 1);
  touch_block(service, 2);
  using Blocks = std::vector<std::pair<int, int>>;
  EXPECT_EQ(service.resident_blocks(), (Blocks{{6, 2}, {6, 1}, {6, 0}}));
  EXPECT_EQ(service.stats().block_evictions, 0u);

  // Touch block 0 again, then fault block 3: the LRU victim must be 1.
  touch_block(service, 0);
  touch_block(service, 3);
  EXPECT_EQ(service.resident_blocks(), (Blocks{{6, 3}, {6, 0}, {6, 2}}));
  EXPECT_EQ(service.stats().block_evictions, 1u);

  // Replaying the same query sequence on a fresh service reproduces the
  // same block residency: eviction depends only on the queries.
  auto replay = QueryService::open(path, config);
  ASSERT_TRUE(replay.ok);
  for (const int block : {0, 1, 2, 0, 3}) {
    touch_block(*replay.service, block);
  }
  EXPECT_EQ(replay.service->resident_blocks(), service.resident_blocks());
  EXPECT_EQ(replay.service->stats().resident_bytes,
            service.stats().resident_bytes);
  EXPECT_EQ(replay.service->stats().block_evictions,
            service.stats().block_evictions);
  std::remove(path.c_str());
}

TEST(QueryService, BlockStatsReconcileWithObsMetricsAndArtifact) {
  const std::string path =
      save_solved_compressed("retra_serve_metrics_c.db", 1024);
  QueryServiceConfig config;
  config.budget_bytes = 2048;
  auto opened = QueryService::open(path, config);
  ASSERT_TRUE(opened.ok) << opened.error;
  QueryService& service = *opened.service;
  ASSERT_TRUE(service.blocked());

  const obs::Snapshot before = obs::snapshot();
  (void)service.value(6, 0);
  (void)service.value(6, 1);
  std::vector<idx::Index> indices(100);
  std::iota(indices.begin(), indices.end(), idx::Index{0});
  std::vector<db::Value> out(indices.size());
  service.values(5, indices, out);
  service.values(6, indices, out);
  const obs::Snapshot delta = obs::snapshot() - before;

  const QueryService::Stats& stats = service.stats();
  EXPECT_EQ(stats.lookups, 202u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_GT(stats.block_hits, 0u);
  EXPECT_GT(stats.block_faults, 0u);
  EXPECT_EQ(stats.faults, 0u);  // block-granular: level counters idle
#if RETRA_METRICS_ENABLED
  EXPECT_EQ(delta[obs::Id::kServeLookups].value, stats.lookups);
  EXPECT_EQ(delta[obs::Id::kServeBlockHits].value, stats.block_hits);
  EXPECT_EQ(delta[obs::Id::kServeBlockFaults].value, stats.block_faults);
  EXPECT_EQ(delta[obs::Id::kServeBlockEvictions].value,
            stats.block_evictions);
  EXPECT_EQ(delta[obs::Id::kServeBlockDecodeSeconds].count,
            stats.block_faults);
  EXPECT_EQ(delta[obs::Id::kServeLevelFaults].value, 0u);
  EXPECT_EQ(delta[obs::Id::kServeLevelEvictions].value, 0u);
#endif  // RETRA_METRICS_ENABLED

  bench::BenchRunMeta meta;
  meta.suite = "serve-test";
  meta.bench = "test_serve_blocked";
  meta.max_level = 6;
  meta.ranks = 1;
  std::string error;
  EXPECT_TRUE(
      bench::validate_bench_artifact(bench::micro_artifact_json(meta, delta),
                                     &error))
      << error;
  std::remove(path.c_str());
}

TEST(QueryService, ServesLevelLargerThanWholeBudget) {
  const std::string path = save_solved("retra_serve_oversize.db", true);
  QueryServiceConfig config;
  config.budget_bytes = 64;  // smaller than every level above 2
  auto opened = QueryService::open(path, config);
  ASSERT_TRUE(opened.ok) << opened.error;
  QueryService& service = *opened.service;
  // The just-touched level is never the eviction victim, so an oversized
  // level still answers (and is the only resident afterwards).
  EXPECT_EQ(service.value(6, 0), solved().value(6, 0));
  EXPECT_EQ(service.resident_levels(), (std::vector<int>{6}));
  EXPECT_GT(service.stats().resident_bytes, config.budget_bytes);
  // Touching another level evicts the oversized one.
  (void)service.value(5, 0);
  EXPECT_EQ(service.resident_levels(), (std::vector<int>{5}));
  std::remove(path.c_str());
}

TEST(QueryService, StatsReconcileWithObsMetricsAndArtifact) {
  const std::string path = save_solved("retra_serve_metrics.db", true);
  QueryServiceConfig config;
  config.budget_bytes = 4096;
  auto opened = QueryService::open(path, config);
  ASSERT_TRUE(opened.ok) << opened.error;
  QueryService& service = *opened.service;

  const obs::Snapshot before = obs::snapshot();
  (void)service.value(6, 0);
  (void)service.value(6, 1);
  std::vector<idx::Index> indices(100);
  std::iota(indices.begin(), indices.end(), idx::Index{0});
  std::vector<db::Value> out(indices.size());
  service.values(5, indices, out);
  service.values(6, indices, out);
  const obs::Snapshot delta = obs::snapshot() - before;

  const QueryService::Stats& stats = service.stats();
  EXPECT_EQ(stats.lookups, 202u);
  EXPECT_EQ(stats.batches, 2u);
#if RETRA_METRICS_ENABLED
  // The obs delta tells the same story as the local mirror (under
  // -DRETRA_METRICS=OFF the macros publish nothing; only the local Stats
  // mirror and the artifact schema below are checked).
  EXPECT_EQ(delta[obs::Id::kServeLookups].value, stats.lookups);
  EXPECT_EQ(delta[obs::Id::kServeLevelFaults].value, stats.faults);
  EXPECT_EQ(delta[obs::Id::kServeLevelEvictions].value, stats.evictions);
  EXPECT_EQ(delta[obs::Id::kServeBatchSize].count, stats.batches);
  EXPECT_EQ(delta[obs::Id::kServeBatchSize].sum, 200u);
  EXPECT_EQ(delta[obs::Id::kServeFaultSeconds].count, stats.faults);
#endif  // RETRA_METRICS_ENABLED

  // And the same delta renders as a valid retra-bench-v1 micro artifact —
  // the exact pipeline bench_q1_query --json uses.
  bench::BenchRunMeta meta;
  meta.suite = "serve-test";
  meta.bench = "test_serve";
  meta.max_level = 6;
  meta.ranks = 1;
  std::string error;
  EXPECT_TRUE(
      bench::validate_bench_artifact(bench::micro_artifact_json(meta, delta),
                                     &error))
      << error;
  std::remove(path.c_str());
}

TEST(QueryService, UnlimitedBudgetNeverEvicts) {
  const std::string path = save_solved("retra_serve_unlimited.db", true);
  auto opened = QueryService::open(path);
  ASSERT_TRUE(opened.ok) << opened.error;
  QueryService& service = *opened.service;
  for (int level = 0; level < service.num_levels(); ++level) {
    (void)service.value(level, 0);
  }
  EXPECT_EQ(service.stats().evictions, 0u);
  EXPECT_EQ(service.stats().resident_bytes,
            service.index().total_payload_bytes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace retra::serve

#include <gtest/gtest.h>

#include "retra/game/awari.hpp"

namespace retra::game {
namespace {

Board B(const char* text) { return board_from_string(text); }

TEST(Sowing, SimpleOwnRow) {
  // Pit 0 holds 3: sow into pits 1, 2, 3.  No capture (lands in own row).
  const Board before = B("3 0 0 0 0 0  1 0 0 0 0 0");
  const AppliedMove m = apply_move(before, 0);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 0);
  // After rotation the opponent row (old mover's pits) is 0 1 1 1 0 0.
  EXPECT_EQ(m.after, B("1 0 0 0 0 0  0 1 1 1 0 0"));
}

TEST(Sowing, WrapsAroundBoard) {
  // Pit 5 holds 8: sows pits 6..11 then 0,1.
  const Board before = B("0 0 0 0 0 8  0 0 0 0 0 0");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 0);
  EXPECT_EQ(m.after, B("1 1 1 1 1 1  1 1 0 0 0 0"));
}

TEST(Sowing, SkipsOriginWithTwelveOrMore) {
  // Pit 0 holds 13: one full lap of the 11 other pits plus pits 1 and 2;
  // the origin is skipped and stays empty.
  const Board before = B("13 0 0 0 0 0  1 1 1 1 1 1");
  const AppliedMove m = apply_move(before, 0);
  ASSERT_TRUE(m.legal);
  // Sown: every pit except 0 gets one; pits 1 and 2 get a second.
  // Pre-rotation board: 0 2 2 1 1 1 | 2 2 2 2 2 2 — last stone in pit 2
  // (own row), so no capture.
  EXPECT_EQ(m.captured, 0);
  EXPECT_EQ(m.after, B("2 2 2 2 2 2  0 2 2 1 1 1"));
}

TEST(Capture, SingleTwo) {
  // Pit 5 -> pit 6 making it 2; opponent still has stones elsewhere.
  const Board before = B("0 0 0 0 0 1  1 0 0 0 0 4");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 2);
  EXPECT_EQ(m.after, B("0 0 0 0 0 4  0 0 0 0 0 0"));
}

TEST(Capture, SingleThree) {
  const Board before = B("0 0 0 0 0 1  2 0 0 0 0 4");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 3);
  EXPECT_EQ(m.after, B("0 0 0 0 0 4  0 0 0 0 0 0"));
}

TEST(Capture, ChainOfTwosAndThrees) {
  // Pit 0 holds 9, sowing through pits 1..9; pits 7, 8, 9 end at 2, 3, 2
  // and are all captured (pit 6 ends at 4, breaking the chain).
  const Board before = B("9 0 0 0 0 0  3 1 2 1 0 5");
  const AppliedMove m = apply_move(before, 0);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 2 + 3 + 2);
  // Pre-rotation: 0 1 1 1 1 1 | 4 0 0 0 0 5.
  EXPECT_EQ(m.after, B("4 0 0 0 0 5  0 1 1 1 1 1"));
}

TEST(Capture, ChainStopsAtOwnRow) {
  // Landing on pit 6 with chain continuing backwards would leave the
  // opponent row; only pit 6 is captured.
  const Board before = B("0 0 0 0 0 1  1 0 0 0 2 2");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 2);
  EXPECT_EQ(m.after, B("0 0 0 0 2 2  0 0 0 0 0 0"));
}

TEST(Capture, NoCaptureOnOwnRowLanding) {
  // Last stone lands in own row even though opponent pits hold 2s.
  const Board before = B("2 0 0 0 0 0  2 2 2 2 2 2");
  const AppliedMove m = apply_move(before, 0);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 0);
}

TEST(Capture, NoCaptureOnFourStones) {
  // Pit 6 ends at 4: no capture.
  const Board before = B("0 0 0 0 0 1  3 0 0 0 0 4");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 0);
}

TEST(GrandSlam, ForfeitsCaptureButMoveStands) {
  // Capturing pit 6 (the opponent's only stones) would strip them bare:
  // the sowing stands, nothing is captured.
  const Board before = B("0 0 0 0 0 1  1 0 0 0 0 0");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 0);
  EXPECT_EQ(m.after, B("2 0 0 0 0 0  0 0 0 0 0 0"));
}

TEST(GrandSlam, WholeRowChainForfeits) {
  // Sowing 6 from pit 0 turns the opponent row into all 2s and 3s; the
  // chain from pit 6 backwards... lands at pit 6?  Build a clean case:
  // pit 5 holds 6, sowing pits 6..11 turns (1 1 1 2 2 2) into
  // (2 2 2 3 3 3): the chain from pit 11 captures everything -> forfeit.
  const Board before = B("0 0 0 0 0 6  1 1 1 2 2 2");
  const AppliedMove m = apply_move(before, 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.captured, 0);
  EXPECT_EQ(m.after, B("2 2 2 3 3 3  0 0 0 0 0 0"));
}

TEST(MustFeed, NonFeedingMoveIllegalWhenOpponentStarving) {
  // Opponent empty; pit 0 with 2 stones stays in own row: illegal.
  // Pit 5 with 1 stone feeds: legal.
  const Board before = B("2 0 0 0 0 1  0 0 0 0 0 0");
  EXPECT_FALSE(apply_move(before, 0).legal);
  EXPECT_TRUE(apply_move(before, 5).legal);
  const MoveList moves = legal_moves(before);
  ASSERT_EQ(moves.count, 1);
  EXPECT_EQ(moves.items[0].pit, 5);
}

TEST(MustFeed, AllMovesLegalWhenOpponentHasStones) {
  const Board before = B("2 0 0 0 0 1  1 0 0 0 0 0");
  EXPECT_TRUE(apply_move(before, 0).legal);
  EXPECT_TRUE(apply_move(before, 5).legal);
}

TEST(Terminal, EmptyOwnRowLosesEverything) {
  const Board board = B("0 0 0 0 0 0  3 1 0 0 0 0");
  EXPECT_TRUE(is_terminal(board));
  EXPECT_EQ(terminal_reward(board), -4);
}

TEST(Terminal, CannotFeedTakesEverything) {
  // Opponent empty and no move reaches their row.
  const Board board = B("1 1 0 0 0 0  0 0 0 0 0 0");
  EXPECT_TRUE(is_terminal(board));
  EXPECT_EQ(terminal_reward(board), 2);
}

TEST(Terminal, EmptyBoardIsWorthZero) {
  const Board board = B("0 0 0 0 0 0  0 0 0 0 0 0");
  EXPECT_TRUE(is_terminal(board));
  EXPECT_EQ(terminal_reward(board), 0);
}

TEST(Terminal, FeedingMoveMeansNotTerminal) {
  const Board board = B("0 0 0 0 0 2  0 0 0 0 0 0");
  EXPECT_FALSE(is_terminal(board));
}

TEST(Moves, EmptyPitIsIllegal) {
  const Board board = B("0 1 0 0 0 0  1 0 0 0 0 0");
  EXPECT_FALSE(apply_move(board, 0).legal);
  EXPECT_FALSE(apply_move(board, 7).legal);   // out of mover's range
  EXPECT_FALSE(apply_move(board, -1).legal);
}

TEST(Moves, StoneConservation) {
  // Stones on board + captured stones == stones before, for every legal
  // move of a bag of positions.
  const Board boards[] = {
      B("4 4 4 4 4 4  4 4 4 4 4 4"), B("1 0 3 0 5 0  2 2 2 0 0 1"),
      B("0 0 0 0 0 12  1 1 1 1 1 1"), B("13 1 0 0 0 0  0 0 2 3 0 0"),
  };
  for (const Board& board : boards) {
    const int before = idx::stones_on(board);
    for (const auto& m : legal_moves(board)) {
      EXPECT_EQ(idx::stones_on(m.after) + m.captured, before);
    }
  }
}

TEST(Moves, RotationIsConsistent) {
  // The pit opposite the origin (origin + 6 in the rotated frame) is the
  // origin itself and must be empty after any move.
  const Board board = B("4 4 4 4 4 4  4 4 4 4 4 4");
  for (const auto& m : legal_moves(board)) {
    EXPECT_EQ(m.after[static_cast<std::size_t>((m.pit + 6) % kPits)], 0);
  }
}

TEST(Strings, RoundTrip) {
  const Board board = B("1 2 3 4 5 6  7 8 9 10 11 12");
  EXPECT_EQ(board_to_string(board), "[1 2 3 4 5 6 | 7 8 9 10 11 12]");
}

}  // namespace
}  // namespace retra::game

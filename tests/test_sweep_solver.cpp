#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/ra/verify.hpp"

namespace retra::ra {
namespace {

using game::Exit;
using game::GraphLevel;

db::Value no_lower(int, idx::Index) {
  ADD_FAILURE() << "unexpected lower-level lookup";
  return 0;
}

/// Solves a single hand-built level with no lower databases.
std::vector<db::Value> solve(const GraphLevel& level) {
  SweepResult result = solve_level(level, no_lower);
  return result.values;
}

TEST(Sweep, SingleTerminalNode) {
  const GraphLevel level =
      GraphLevel::custom(0, {{}}, {{Exit{3, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{3}));
}

TEST(Sweep, PicksBestExit) {
  const GraphLevel level = GraphLevel::custom(
      0, {{}},
      {{Exit{-1, Exit::kTerminal, 0}, Exit{2, Exit::kTerminal, 0},
        Exit{1, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{2}));
}

TEST(Sweep, NegatesThroughEdges) {
  // 0 -> 1; node 1 exits at +2.  Node 1 takes +2; node 0's only option is
  // -v(1) = -2.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {}}, {{}, {Exit{2, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{-2, 2}));
}

TEST(Sweep, PureCycleIsZero) {
  // 0 <-> 1 with no exits anywhere reachable... every node needs at least
  // one option; give both a terrible exit they will never take.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {0}},
      {{Exit{-5, Exit::kTerminal, 0}}, {Exit{-5, Exit::kTerminal, 0}}});
  // Both prefer cycling (0) to surrendering 5.
  EXPECT_EQ(solve(level), (std::vector<db::Value>{0, 0}));
}

TEST(Sweep, ForcedThroughCyclePartner) {
  // The counterexample to naive zero-filling: 0 has exit +2 and edge to 1;
  // 1's only move is back to 0.  Node 0 cashes +2 (cycling would give 0,
  // the exit is better); node 1 is forced to hand 0 the +2, so v(1) = -2.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {0}}, {{Exit{2, Exit::kTerminal, 0}}, {}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{2, -2}));
}

TEST(Sweep, PrefersCycleOverBadExit) {
  // 0 has exit -2 and edge to 1; 1's only move is back to 0.  If 0 took
  // the exit, 1 would enjoy +2; but 0 cycles instead, so both are 0.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {0}}, {{Exit{-2, Exit::kTerminal, 0}}, {}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{0, 0}));
}

TEST(Sweep, SelfLoopGuaranteesNonNegative) {
  // A self-loop lets the mover repeat forever: value max(best exit, 0).
  const GraphLevel bad_exit = GraphLevel::custom(
      0, {{0}}, {{Exit{-4, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(bad_exit), (std::vector<db::Value>{0}));
  const GraphLevel good_exit = GraphLevel::custom(
      0, {{0}}, {{Exit{4, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(good_exit), (std::vector<db::Value>{4}));
}

TEST(Sweep, ChainAlternatesSigns) {
  // 0 -> 1 -> 2 -> exit +1: values -1, +1, ... wait: v(2)=1, v(1)=-1,
  // v(0)=+1.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {2}, {}}, {{}, {}, {Exit{1, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{1, -1, 1}));
}

TEST(Sweep, ChoosesCycleBranchOverLosingBranch) {
  // 0 can move to 1 (which exits at +3, so worth -3 to 0) or to 2, which
  // moves back to 0 (a cycle worth 0).  0 must also not be forced: its
  // value is 0 via the cycle.  2's value: only move to 0, so -v(0) = 0.
  const GraphLevel level = GraphLevel::custom(
      0, {{1, 2}, {}, {0}},
      {{}, {Exit{3, Exit::kTerminal, 0}}, {}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{0, 3, 0}));
}

TEST(Sweep, MultiEdgesCountPerEdge) {
  // Duplicate edge 0 -> 1, 0 -> 1.  cnt must be 2 and both contributions
  // must be deliverable without tripping the edge-count checks.
  const GraphLevel level = GraphLevel::custom(
      0, {{1, 1}, {}}, {{}, {Exit{1, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve(level), (std::vector<db::Value>{-1, 1}));
}

TEST(Sweep, UsesLowerLevelValues) {
  // One node whose exit looks up value 2 in "level 0" with reward 1:
  // option value 1 - 2 = -1.
  const GraphLevel level = GraphLevel::custom(
      1, {{}}, {{Exit{1, 0, 5}}}, /*lower_bounds=*/{4});
  auto lower = [](int l, idx::Index i) {
    EXPECT_EQ(l, 0);
    EXPECT_EQ(i, 5u);
    return db::Value{2};
  };
  const SweepResult result = solve_level(level, lower);
  EXPECT_EQ(result.values, (std::vector<db::Value>{-1}));
}

TEST(Sweep, StatsAreCoherent) {
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {0}}, {{Exit{2, Exit::kTerminal, 0}}, {}});
  const SweepResult result = solve_level(level, no_lower);
  EXPECT_EQ(result.stats.positions, 2u);
  EXPECT_EQ(result.stats.exit_options, 1u);
  EXPECT_EQ(result.stats.level_edges, 2u);
  EXPECT_EQ(result.stats.assignments + result.stats.zero_filled, 2u);
}

TEST(Sweep, OrderIsRecordedWhenRequested) {
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {0}}, {{Exit{2, Exit::kTerminal, 0}}, {}});
  SweepOptions options;
  options.record_order = true;
  const SweepResult result = solve_level(level, no_lower, options);
  ASSERT_EQ(result.order.size(), 2u);
  // Node 0 (value +2) is seeded first; node 1 follows from its update.
  EXPECT_LT(result.order[0], result.order[1]);
}

// ---------------------------------------------------------------------
// Awari: hand-solved small levels.

TEST(AwariSweep, LevelZero) {
  const game::AwariLevel level(0);
  auto lower = [](int, idx::Index) -> db::Value {
    ADD_FAILURE();
    return 0;
  };
  const SweepResult result = solve_level(level, lower);
  EXPECT_EQ(result.values, (std::vector<db::Value>{0}));
}

TEST(AwariSweep, LevelOneHandValues) {
  // One stone on the board.  In the mover's pits 0-4 the only move stays
  // in the own row, failing must-feed: terminal, mover sweeps (+1).  In
  // pit 5 the forced feeding move hands the opponent that same +1 position
  // (value -1).  In the opponent's row the mover has no move at all (-1).
  db::Database database;
  database.push_level(0, {0});
  auto lower = [&](int l, idx::Index i) { return database.value(l, i); };
  const SweepResult result = solve_level(game::AwariLevel(1), lower);
  ASSERT_EQ(result.values.size(), 12u);
  for (int pit = 0; pit < 12; ++pit) {
    game::Board board{};
    board[static_cast<std::size_t>(pit)] = 1;
    const db::Value expected = (pit <= 4) ? 1 : -1;
    EXPECT_EQ(result.values[idx::rank(board)], expected) << "pit " << pit;
  }
}

TEST(AwariSweep, CaptureFeedsExitThroughLowerLevel) {
  // [0 0 0 0 0 1 | 1 0 0 0 0 1]: sowing pit 5 captures 2 (pit 6 becomes
  // 2, not a grand slam because pit 11 still holds a stone).  The
  // successor is the level-1 board with one stone in the new mover's pit 5
  // (old pit 11), worth -1 -> option value 2 - (-1) = 3... but the level
  // bound is 3 and other moves may do better/worse; just check the exact
  // value through a real two-level build.
  const auto database = build_database(game::AwariFamily{}, 3);
  const game::Board board =
      game::board_from_string("0 0 0 0 0 1  1 0 0 0 0 1");
  const db::Value v = database.value(3, idx::rank(board));
  // Captures 2, opponent left with [0 ... 0 1] from their side: stone in
  // their pit 5 -> their value -1 -> option 2 - (-1) = 3.
  EXPECT_EQ(v, 3);
}

TEST(AwariSweep, InitialFourStonePositionSymmetricValue) {
  // The 2-stones-per-pit-total-2 mirror: any board equal to its own
  // rotation has value 0 only if the game is symmetric; spot-check the
  // fully symmetric 12-stone board [1...1|1...1] after a full build.
  const auto database = build_database(game::AwariFamily{}, 4);
  // Check a symmetric level-4 board: one stone in each of pits 2,3 and
  // 8,9 (the rotation maps the position to itself).
  game::Board board{};
  board[2] = board[3] = board[8] = board[9] = 1;
  const db::Value v = database.value(4, idx::rank(board));
  // A self-rotation-symmetric position need not be 0 in awari (the mover
  // often has an edge), but its value must be realisable: |v| <= 4.
  EXPECT_LE(std::abs(v), 4);
}

TEST(AwariBuilder, VerifiedBuildSucceeds) {
  BuildOptions options;
  options.verify = true;
  const auto database = build_database(game::AwariFamily{}, 5, options);
  EXPECT_EQ(database.num_levels(), 6);
  EXPECT_EQ(database.total_positions(), idx::cumulative_size(5));
}

}  // namespace
}  // namespace retra::ra

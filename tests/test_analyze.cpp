// Unit tests of the retra_analyze tokenizer and analyses
// (tools/retra_analyze): every rule is exercised with a violating and a
// clean fixture, plus the `// retra-analyze: allow(<rule>)` escape.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis.hpp"
#include "tokenizer.hpp"

namespace retra::analyze {
namespace {

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string messages(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

// ------------------------------------------------------------------
// Tokenizer

TEST(Tokenizer, KindsAndLines) {
  const auto toks = tokenize("int x = 42;\nreturn x + 0x1F;\n");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[5].text, "return");
  EXPECT_EQ(toks[5].line, 2);
}

TEST(Tokenizer, CommentsAreSkippedButLinesCounted) {
  const auto toks = tokenize("// one\n/* two\nthree */ four\n");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].text, "four");
  EXPECT_EQ(toks[0].line, 3);
}

TEST(Tokenizer, DigitSeparatorsStayInOneNumber) {
  const auto toks = tokenize("x = 1'000'000;");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kNumber);
  EXPECT_EQ(toks[2].text, "1'000'000");
}

TEST(Tokenizer, DigitSeparatorDoesNotEatFollowingCharLiteral) {
  // `1` then the char literal 'a' — the apostrophe is not a separator.
  const auto toks = tokenize("f(1,'a');");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[2].kind, TokKind::kNumber);
  EXPECT_EQ(toks[2].text, "1");
  EXPECT_EQ(toks[4].kind, TokKind::kChar);
}

TEST(Tokenizer, RawStringIsOneToken) {
  const auto toks = tokenize(R"src(s = R"(say "rand" loudly)"; t = 1;)src");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(string_value(toks[2]), "say \"rand\" loudly");
  // Tokenisation resynchronised after the raw string.
  EXPECT_EQ(toks[4].text, "t");
}

TEST(Tokenizer, StripToCodeBlanksCommentAndLiteralContents) {
  const std::string stripped =
      strip_to_code("int a; // rand here\nchar c = \"mt19937\"[0];\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("mt19937"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  // Line structure intact.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
}

TEST(Tokenizer, StripToCodeHandlesRawStrings) {
  const std::string src =
      "auto s = R\"(contains rand and \" quote)\";\nint rand_free;\n";
  const std::string stripped = strip_to_code(src);
  EXPECT_EQ(stripped.find("contains"), std::string::npos);
  // Code after the raw string survives: the inner quote did not
  // desynchronise the stripper.
  EXPECT_NE(stripped.find("int rand_free;"), std::string::npos);
}

// ------------------------------------------------------------------
// lock-coverage

AnalysisInput input_of(std::string path, std::string content) {
  AnalysisInput input;
  input.files.push_back({std::move(path), std::move(content)});
  return input;
}

TEST(LockCoverage, UnannotatedMemberOfMutexClassFails) {
  const auto findings = analyze_locks(input_of("src/exec/pool.hpp",
                                               R"(#pragma once
#include "retra/support/sync.hpp"
class Pool {
 private:
  support::Mutex mutex_;
  int jobs_ = 0;
};
)"));
  ASSERT_EQ(count_rule(findings, "lock-coverage"), 1) << messages(findings);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("jobs_"), std::string::npos);
}

TEST(LockCoverage, AnnotatedMembersPass) {
  const auto findings = analyze_locks(input_of("src/exec/pool.hpp",
                                               R"(#pragma once
class Pool {
  support::Mutex mutex_;
  int jobs_ RETRA_GUARDED_BY(mutex_) = 0;
  Node* head_ RETRA_PT_GUARDED_BY(mutex_) = nullptr;
  int epoch_ RETRA_NOT_GUARDED = 0;
};
)"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

TEST(LockCoverage, AtomicAndConstMembersAreExempt) {
  const auto findings = analyze_locks(input_of("src/exec/pool.hpp",
                                               R"(class Pool {
  support::Mutex mutex_;
  std::atomic<bool> stop_{false};
  const int limit_ = 8;
  support::CondVar cv_;
};
)"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

TEST(LockCoverage, ClassWithoutMutexIsNotEnforced) {
  const auto findings = analyze_locks(
      input_of("src/exec/pool.hpp", "class Plain { int a; int b; };\n"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

TEST(LockCoverage, StdMutexTypeOutsideSupportFails) {
  const auto findings = analyze_locks(input_of(
      "src/net/cache.hpp", "class C { std::mutex mu_; };\n"));
  ASSERT_EQ(count_rule(findings, "lock-coverage"), 1) << messages(findings);
  EXPECT_NE(findings[0].message.find("support::Mutex"), std::string::npos);
}

TEST(LockCoverage, StdMutexInsideSupportIsTheWrapper) {
  const auto findings = analyze_locks(
      input_of("src/support/include/retra/support/sync.hpp",
               "class Mutex { std::mutex m_; };\n"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

TEST(LockCoverage, NonSrcFilesAreNotEnforced) {
  const auto findings = analyze_locks(input_of(
      "tests/test_x.cpp", "class C { std::mutex mu_; int n_; };\n"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

TEST(LockCoverage, AllowDirectiveSuppresses) {
  const auto findings = analyze_locks(input_of("src/exec/pool.hpp",
                                               R"(class Pool {
  support::Mutex mutex_;
  // retra-analyze: allow(lock-coverage)
  int jobs_ = 0;
};
)"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

TEST(LockCoverage, MemberFunctionsAndStaticsIgnored) {
  const auto findings = analyze_locks(input_of("src/exec/pool.hpp",
                                               R"(class Pool {
 public:
  Pool() : jobs_(0) {}
  void run(int n) { jobs_ += n; }
  int jobs() const RETRA_EXCLUDES(mutex_) { return jobs_; }
  static constexpr int kMax = 8;
  using Clock = int;

 private:
  support::Mutex mutex_;
  int jobs_ RETRA_GUARDED_BY(mutex_);
};
)"));
  EXPECT_FALSE(has_rule(findings, "lock-coverage")) << messages(findings);
}

// ------------------------------------------------------------------
// io-blocking

TEST(IoBlocking, BlockingCallInMarkedBodyFails) {
  const auto findings = analyze_locks(input_of("src/net/srv.cpp",
                                               R"(void io_loop() RETRA_IO_THREAD_ONLY {
  usleep(100);
}
)"));
  ASSERT_EQ(count_rule(findings, "io-blocking"), 1) << messages(findings);
  EXPECT_NE(findings[0].message.find("usleep"), std::string::npos);
}

TEST(IoBlocking, NonBlockingCallsPass) {
  const auto findings = analyze_locks(input_of("src/net/srv.cpp",
                                               R"(void io_loop() RETRA_IO_THREAD_ONLY {
  epoll_wait(fd, events, 64, -1);
  accept4(fd, nullptr, nullptr, 0);
  cv.notify_one();
}
)"));
  EXPECT_FALSE(has_rule(findings, "io-blocking")) << messages(findings);
}

TEST(IoBlocking, UnmarkedFunctionsAreNotChecked) {
  const auto findings = analyze_locks(
      input_of("src/net/srv.cpp", "void worker() { queue_cv.wait(m); }\n"));
  EXPECT_FALSE(has_rule(findings, "io-blocking")) << messages(findings);
}

TEST(IoBlocking, AllowDirectiveSuppresses) {
  const auto findings = analyze_locks(input_of("src/net/srv.cpp",
                                               R"(void io_loop() RETRA_IO_THREAD_ONLY {
  // retra-analyze: allow(io-blocking)
  poll(fds, n, timeout);
}
)"));
  EXPECT_FALSE(has_rule(findings, "io-blocking")) << messages(findings);
}

// ------------------------------------------------------------------
// layer-order / include-cycle

TEST(LayerOrder, DownwardIncludePasses) {
  const auto findings = analyze_layering(input_of(
      "src/net/src/server.cpp", "#include \"retra/support/sync.hpp\"\n"));
  EXPECT_FALSE(has_rule(findings, "layer-order")) << messages(findings);
}

TEST(LayerOrder, BackEdgeFails) {
  const auto findings = analyze_layering(input_of(
      "src/support/src/sync.cpp", "#include \"retra/net/server.hpp\"\n"));
  ASSERT_EQ(count_rule(findings, "layer-order"), 1) << messages(findings);
  EXPECT_NE(findings[0].message.find("back-edge"), std::string::npos);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LayerOrder, SameLayerCrossModuleFails) {
  const auto findings = analyze_layering(input_of(
      "src/obs/src/metrics.cpp", "#include \"retra/exec/worker_pool.hpp\"\n"));
  ASSERT_EQ(count_rule(findings, "layer-order"), 1) << messages(findings);
  EXPECT_NE(findings[0].message.find("same-layer"), std::string::npos);
}

TEST(LayerOrder, ToolsMayIncludeAnything) {
  const auto findings = analyze_layering(input_of(
      "tools/retra_server/main.cpp", "#include \"retra/net/server.hpp\"\n"));
  EXPECT_FALSE(has_rule(findings, "layer-order")) << messages(findings);
}

TEST(LayerOrder, AllowDirectiveSuppresses) {
  const auto findings = analyze_layering(
      input_of("src/support/src/sync.cpp",
               "// retra-analyze: allow(layer-order)\n"
               "#include \"retra/net/server.hpp\"\n"));
  EXPECT_FALSE(has_rule(findings, "layer-order")) << messages(findings);
}

TEST(IncludeCycle, TwoHeaderCycleIsReported) {
  AnalysisInput input;
  input.files.push_back({"src/net/include/retra/net/a.hpp",
                         "#pragma once\n#include \"retra/net/b.hpp\"\n"});
  input.files.push_back({"src/net/include/retra/net/b.hpp",
                         "#pragma once\n#include \"retra/net/a.hpp\"\n"});
  const auto findings = analyze_layering(input);
  ASSERT_GE(count_rule(findings, "include-cycle"), 1) << messages(findings);
  bool described = false;
  for (const Finding& f : findings) {
    if (f.rule == "include-cycle" &&
        f.message.find("retra/net/a.hpp") != std::string::npos &&
        f.message.find("retra/net/b.hpp") != std::string::npos) {
      described = true;
    }
  }
  EXPECT_TRUE(described) << messages(findings);
}

TEST(IncludeCycle, AcyclicChainPasses) {
  AnalysisInput input;
  input.files.push_back({"src/net/include/retra/net/a.hpp",
                         "#pragma once\n#include \"retra/net/b.hpp\"\n"});
  input.files.push_back({"src/net/include/retra/net/b.hpp", "#pragma once\n"});
  EXPECT_FALSE(has_rule(analyze_layering(input), "include-cycle"));
}

// ------------------------------------------------------------------
// protocol-doc / metrics-doc

// A miniature protocol.hpp the parser understands, structurally
// identical to the real one.
constexpr const char* kMiniProtocol = R"(#pragma once
inline constexpr std::uint32_t kMagic = 0x314E5452u;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr std::uint32_t kMaxBatchLookups = 1u << 16;
enum class Op : std::uint8_t {
  kPing = 1,
  kPong = 65,
};
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kMalformed = 1,
  kBadMagic = 2,
};
struct FrameHeader {
  static constexpr std::size_t kWireSize = 4 + 1 + 1 + 2 + 4 + 4;
};
struct StatsReply {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::vector<std::uint64_t> level_sizes;
  static constexpr std::size_t kCounterCount = 2;
};
)";

constexpr const char* kMiniProtocolDoc = R"(# protocol
Every frame is a fixed 16-byte header.  Magic is `0x314E5452`.
Payloads are at most 1 MiB; a batch carries at most **65536** lookups.

## Ops

| Op | Value | Direction | Payload |
|---|---|---|---|
| PING | 1 | request | empty |
| PONG | 65 | response | empty |

### STATS

The reply payload is 2 u64 counters:

| Field | Meaning |
|---|---|
| `connections` | connections accepted |
| `requests` | requests admitted |

### ERROR

| Code | Name | Meaning |
|---|---|---|
| 1 | `malformed` | bad payload |
| 2 | `bad-magic` | bad magic |
)";

AnalysisInput spec_input(std::string hpp, std::string doc) {
  AnalysisInput input;
  input.files.push_back(
      {"src/net/include/retra/net/protocol.hpp", std::move(hpp)});
  input.protocol_doc = std::move(doc);
  // Keep the metrics half quiet: a minimal consistent pair.
  input.files.push_back({"src/obs/include/retra/obs/metrics.hpp",
                         "inline constexpr std::array<Desc, 1> kCatalog = {{\n"
                         "    {\"a.b\", Kind::kCounter, \"u\", \"c\", \"-\",\n"
                         "     \"help\"},\n"
                         "}};\n"});
  input.metrics_doc =
      "## Metric catalog\n\n"
      "| Metric | Kind | Unit | Component | Paper table | Meaning |\n"
      "|---|---|---|---|---|---|\n"
      "| `a.b` | counter | u | c | - | help |\n";
  return input;
}

TEST(ProtocolDoc, ConsistentPairPasses) {
  const auto findings =
      analyze_spec(spec_input(kMiniProtocol, kMiniProtocolDoc));
  EXPECT_TRUE(findings.empty()) << messages(findings);
}

TEST(ProtocolDoc, ValueDriftIsCaught) {
  std::string doc = kMiniProtocolDoc;
  doc.replace(doc.find("| PING | 1 |"), 12, "| PING | 9 |");
  const auto findings = analyze_spec(spec_input(kMiniProtocol, doc));
  ASSERT_TRUE(has_rule(findings, "protocol-doc")) << messages(findings);
}

TEST(ProtocolDoc, UndocumentedOpIsCaught) {
  std::string hpp = kMiniProtocol;
  hpp.replace(hpp.find("kPong = 65,"), 11, "kPong = 65,\n  kValue = 66,");
  const auto findings = analyze_spec(spec_input(std::move(hpp),
                                                kMiniProtocolDoc));
  ASSERT_TRUE(has_rule(findings, "protocol-doc")) << messages(findings);
  bool names_value = false;
  for (const Finding& f : findings) {
    if (f.message.find("VALUE") != std::string::npos) names_value = true;
  }
  EXPECT_TRUE(names_value) << messages(findings);
}

TEST(ProtocolDoc, StaleDocOpIsCaught) {
  std::string doc = kMiniProtocolDoc;
  doc.insert(doc.find("| PONG"), "| QUERY | 2 | request | gone |\n");
  const auto findings = analyze_spec(spec_input(kMiniProtocol, doc));
  ASSERT_TRUE(has_rule(findings, "protocol-doc")) << messages(findings);
}

TEST(ProtocolDoc, ErrorNameDriftIsCaught) {
  std::string doc = kMiniProtocolDoc;
  doc.replace(doc.find("`bad-magic`"), 11, "`wrong-magic`");
  const auto findings = analyze_spec(spec_input(kMiniProtocol, doc));
  ASSERT_TRUE(has_rule(findings, "protocol-doc")) << messages(findings);
}

TEST(ProtocolDoc, StatsFieldOrderDriftIsCaught) {
  std::string doc = kMiniProtocolDoc;
  doc.replace(doc.find("| `connections` | connections accepted |"), 40,
              "| `requests` | requests admitted |\n| `connections` | x |");
  const auto findings = analyze_spec(spec_input(kMiniProtocol, doc));
  ASSERT_TRUE(has_rule(findings, "protocol-doc")) << messages(findings);
}

TEST(ProtocolDoc, CounterCountDriftIsCaught) {
  std::string hpp = kMiniProtocol;
  hpp.replace(hpp.find("kCounterCount = 2"), 17, "kCounterCount = 3");
  const auto findings =
      analyze_spec(spec_input(std::move(hpp), kMiniProtocolDoc));
  ASSERT_TRUE(has_rule(findings, "protocol-doc")) << messages(findings);
}

TEST(MetricsDoc, KindDriftIsCaught) {
  AnalysisInput input = spec_input(kMiniProtocol, kMiniProtocolDoc);
  const std::size_t pos = input.metrics_doc.find("counter");
  input.metrics_doc.replace(pos, 7, "gauge");
  const auto findings = analyze_spec(input);
  ASSERT_TRUE(has_rule(findings, "metrics-doc")) << messages(findings);
}

TEST(MetricsDoc, UndocumentedMetricIsCaught) {
  AnalysisInput input = spec_input(kMiniProtocol, kMiniProtocolDoc);
  input.metrics_doc = "## Metric catalog\n\n| Metric | Kind |\n|---|---|\n";
  const auto findings = analyze_spec(input);
  ASSERT_TRUE(has_rule(findings, "metrics-doc")) << messages(findings);
}

TEST(MetricsDoc, StaleDocMetricIsCaught) {
  AnalysisInput input = spec_input(kMiniProtocol, kMiniProtocolDoc);
  input.metrics_doc += "| `gone.metric` | counter | u | c | - | stale |\n";
  const auto findings = analyze_spec(input);
  ASSERT_TRUE(has_rule(findings, "metrics-doc")) << messages(findings);
}

// ------------------------------------------------------------------
// format-doc

// A miniature db/format.hpp the parser understands, structurally
// identical to the real one.
constexpr const char* kMiniFormat = R"(#pragma once
inline constexpr std::string_view kMagic01 = "RTRADB01";
inline constexpr std::string_view kMagic03 = "RTRADB03";
inline constexpr std::size_t kMagicBytes = 8;
inline constexpr std::uint32_t kMaxLevels = 4096;
inline constexpr std::uint64_t kMaxLevelSize = 1ull << 40;
inline constexpr std::uint32_t kDefaultBlockPositions = 4096;
inline constexpr std::uint32_t kMaxBlockPositions = 65536;
inline constexpr std::uint32_t kMaxLevelBlocks = 1u << 20;
enum class BlockScheme : std::uint8_t {
  kRaw = 0,
  kRle = 1,
  kFreq = 2,
};
inline constexpr std::uint8_t kBlockSchemeCount = 3;
inline constexpr std::uint32_t kFreqMaxSymbols = 256;
inline constexpr std::uint32_t kFreqMaxCodeBits = 32;
)";

constexpr const char* kMiniFormatDoc = R"(# formats
Every file starts with an 8-byte magic.  Readers accept
at most 4096 levels per file and at most 2^40 positions per level.

## Version negotiation

| magic | version | writer |
|---|---|---|
| `RTRADB01` | 1 | save |
| `RTRADB03` | 3 | compress |

A block holds at most 65536 positions per block (default **4096**) and
a level holds at most 2^20 blocks.  Frequency tables hold
at most 256 distinct symbols with code lengths in 1..32.

## Block schemes

| tag | scheme |
|---|---|
| 0 | `raw` |
| 1 | `rle` |
| 2 | `freq` |
)";

AnalysisInput format_input(std::string hpp, std::string doc) {
  AnalysisInput input;
  input.files.push_back(
      {"src/db/include/retra/db/format.hpp", std::move(hpp)});
  input.format_doc = std::move(doc);
  return input;
}

TEST(FormatDoc, ConsistentPairPasses) {
  const auto findings =
      analyze_format(format_input(kMiniFormat, kMiniFormatDoc));
  EXPECT_TRUE(findings.empty()) << messages(findings);
}

TEST(FormatDoc, QuietWhenBothSidesAbsent) {
  // Fixtures without the database layer have nothing to check — the
  // protocol/metrics fixtures above stay clean through analyze_spec.
  AnalysisInput input;
  input.files.push_back({"src/support/timer.hpp", "struct T {};\n"});
  EXPECT_TRUE(analyze_format(input).empty());
}

TEST(FormatDoc, MissingDocIsCaught) {
  AnalysisInput input = format_input(kMiniFormat, "");
  const auto findings = analyze_format(input);
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

TEST(FormatDoc, LimitDriftIsCaught) {
  std::string hpp = kMiniFormat;
  hpp.replace(hpp.find("kMaxLevels = 4096"), 17, "kMaxLevels = 2048");
  const auto findings =
      analyze_format(format_input(std::move(hpp), kMiniFormatDoc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
  bool names_ceiling = false;
  for (const Finding& f : findings) {
    if (f.message.find("level-count ceiling") != std::string::npos) {
      names_ceiling = true;
    }
  }
  EXPECT_TRUE(names_ceiling) << messages(findings);
}

TEST(FormatDoc, UndocumentedMagicIsCaught) {
  std::string doc = kMiniFormatDoc;
  doc.erase(doc.find("| `RTRADB03` | 3 | compress |\n"), 30);
  const auto findings = analyze_format(format_input(kMiniFormat, doc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

TEST(FormatDoc, VersionNumberDriftIsCaught) {
  std::string doc = kMiniFormatDoc;
  doc.replace(doc.find("| `RTRADB03` | 3 |"), 18, "| `RTRADB03` | 2 |");
  const auto findings = analyze_format(format_input(kMiniFormat, doc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

TEST(FormatDoc, StaleDocMagicIsCaught) {
  std::string doc = kMiniFormatDoc;
  doc.insert(doc.find("| `RTRADB03`"), "| `RTRADB04` | 4 | future |\n");
  const auto findings = analyze_format(format_input(kMiniFormat, doc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

TEST(FormatDoc, SchemeNameDriftIsCaught) {
  std::string doc = kMiniFormatDoc;
  doc.replace(doc.find("| 1 | `rle` |"), 13, "| 1 | `runlen` |");
  const auto findings = analyze_format(format_input(kMiniFormat, doc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

TEST(FormatDoc, StaleSchemeRowIsCaught) {
  std::string doc = kMiniFormatDoc;
  doc += "| 3 | `lz` |\n";
  const auto findings = analyze_format(format_input(kMiniFormat, doc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

TEST(FormatDoc, SchemeCountDriftIsCaught) {
  std::string hpp = kMiniFormat;
  hpp.replace(hpp.find("kBlockSchemeCount = 3"), 21,
              "kBlockSchemeCount = 4");
  const auto findings =
      analyze_format(format_input(std::move(hpp), kMiniFormatDoc));
  ASSERT_TRUE(has_rule(findings, "format-doc")) << messages(findings);
}

// ------------------------------------------------------------------
// analyze_all ordering

TEST(AnalyzeAll, FindingsAreSortedByFileAndLine) {
  AnalysisInput input = spec_input(kMiniProtocol, kMiniProtocolDoc);
  input.files.push_back({"src/support/src/bad.cpp",
                         "#include \"retra/net/server.hpp\"\n"});
  input.files.push_back(
      {"src/exec/pool.hpp",
       "class P { support::Mutex m_; int a_; int b_; };\n"});
  const auto findings = analyze_all(input);
  ASSERT_GE(findings.size(), 3u) << messages(findings);
  const bool sorted = std::is_sorted(
      findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
        return a.file != b.file ? a.file < b.file : a.line < b.line;
      });
  EXPECT_TRUE(sorted) << messages(findings);
}

}  // namespace
}  // namespace retra::analyze

#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"

namespace retra::ra {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    database_ = new db::Database(build_database(game::AwariFamily{}, 7));
    source_ = new serve::DatabaseSource(*database_);
  }
  static void TearDownTestSuite() {
    delete source_;
    source_ = nullptr;
    delete database_;
    database_ = nullptr;
  }
  static const db::Database& database() { return *database_; }
  static serve::DatabaseSource& source() { return *source_; }

 private:
  static db::Database* database_;
  static serve::DatabaseSource* source_;
};

db::Database* OracleTest::database_ = nullptr;
serve::DatabaseSource* OracleTest::source_ = nullptr;

TEST_F(OracleTest, ValueMatchesDatabase) {
  const game::Board board =
      game::board_from_string("2 0 1 0 0 1  1 0 0 2 0 0");
  EXPECT_EQ(position_value(source(), board),
            database().value(7, idx::rank(board)));
}

TEST_F(OracleTest, BestMoveRealisesTheValue) {
  // For every non-terminal position of levels 2..6, the top-ranked move's
  // guaranteed value equals the position value (the Bellman equation the
  // database satisfies).
  for (int level = 2; level <= 6; ++level) {
    idx::for_each_board(level, [&](const game::Board& board, idx::Index i) {
      if (game::is_terminal(board)) return;
      const auto evals = evaluate_moves(source(), board);
      ASSERT_FALSE(evals.empty());
      ASSERT_EQ(evals.front().value, database().value(level, i))
          << game::board_to_string(board);
    });
  }
}

TEST_F(OracleTest, MovesAreSortedBestFirst) {
  const game::Board board =
      game::board_from_string("1 1 1 0 0 1  1 0 1 1 0 0");
  const auto evals = evaluate_moves(source(), board);
  for (std::size_t i = 1; i < evals.size(); ++i) {
    EXPECT_GE(evals[i - 1].value, evals[i].value);
  }
}

TEST_F(OracleTest, TerminalPositionsHaveNoMoves) {
  const game::Board board =
      game::board_from_string("0 0 0 0 0 0  1 2 0 0 0 0");
  EXPECT_TRUE(evaluate_moves(source(), board).empty());
  EXPECT_EQ(position_value(source(), board), -3);
}

TEST_F(OracleTest, OptimalLineEndsAtTerminalForDecisiveValues) {
  // A +7 position from the quickstart: optimal play must cash stones, so
  // within a bounded number of plies the line reaches a terminal or at
  // least captures something; check the transcript is consistent and
  // nonempty.
  const game::Board board =
      game::board_from_string("2 0 1 0 0 1  1 0 0 2 0 0");
  const auto line = optimal_line(source(), board, 32);
  ASSERT_FALSE(line.empty());
  EXPECT_NE(line.back().find("terminal"), std::string::npos);
}

TEST_F(OracleTest, DrawPositionsCanCycleForever) {
  // Find a zero-valued, non-terminal level-6 position and confirm the
  // optimal line neither crashes nor terminates early with a capture
  // that would contradict the draw value.
  game::Board draw{};
  bool found = false;
  idx::for_each_board(6, [&](const game::Board& board, idx::Index i) {
    if (found || game::is_terminal(board)) return;
    if (database().value(6, i) == 0) {
      draw = board;
      found = true;
    }
  });
  ASSERT_TRUE(found);
  const auto line = optimal_line(source(), draw, 12);
  EXPECT_EQ(line.size(), 12u);  // never terminal: both sides hold the draw
}

TEST_F(OracleTest, ValueEquationHoldsEverywhere) {
  // v(p) = max over moves of (captured − v(after)) for non-terminal p —
  // the full-database Bellman check through the public oracle API.
  for (int level = 1; level <= 5; ++level) {
    idx::for_each_board(level, [&](const game::Board& board, idx::Index i) {
      if (game::is_terminal(board)) {
        ASSERT_EQ(database().value(level, i),
                  game::terminal_reward(board));
        return;
      }
      db::Value best = INT16_MIN;
      for (const auto& eval : evaluate_moves(source(), board)) {
        best = std::max(best, eval.value);
      }
      ASSERT_EQ(best, database().value(level, i))
          << game::board_to_string(board);
    });
  }
}

}  // namespace
}  // namespace retra::ra

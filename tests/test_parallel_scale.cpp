// Paper-scale rank counts on small workloads: 64 ranks must work (most
// shards tiny or empty), and every configuration axis must compose.
#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/para/sim_build.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

TEST(ParallelScale, SixtyFourRanksAwari) {
  ParallelConfig config;
  config.ranks = 64;
  const auto result = build_parallel(game::AwariFamily{}, 6, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

TEST(ParallelScale, SixtyFourRanksSimulated) {
  ParallelConfig config;
  config.ranks = 64;
  const auto result = build_parallel_simulated(
      game::AwariFamily{}, 6, config, sim::ClusterModel{});
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
  EXPECT_GT(result.total_time_s(), 0.0);
}

class KalahSchemes : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(KalahSchemes, DistributedMatchesSequential) {
  ParallelConfig config;
  config.ranks = 7;
  config.scheme = GetParam();
  config.block_size = 16;
  const auto result = build_parallel(game::KalahFamily{}, 6, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::KalahFamily{}, 6));
}

INSTANTIATE_TEST_SUITE_P(Schemes, KalahSchemes,
                         ::testing::Values(PartitionScheme::kBlock,
                                           PartitionScheme::kCyclic,
                                           PartitionScheme::kBlockCyclic));

TEST(ParallelScale, EverythingOnAtOnce) {
  // Threads + async + replication + tiny combining + block-cyclic: the
  // kitchen sink must still be bit-identical.
  ParallelConfig config;
  config.ranks = 6;
  config.use_threads = true;
  config.async = true;
  config.replicate_lower = true;
  config.combine_bytes = 16;
  config.scheme = PartitionScheme::kBlockCyclic;
  config.block_size = 8;
  const auto result = build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

TEST(ParallelScale, MessagesScaleWithRemoteFraction) {
  // Remote update share should grow towards (P-1)/P with cyclic
  // partitioning as P grows.
  auto remote_share = [](int ranks) {
    ParallelConfig config;
    config.ranks = ranks;
    const auto result = build_parallel(game::AwariFamily{}, 7, config);
    std::uint64_t local = 0, remote = 0;
    for (const auto& info : result.levels) {
      local += info.total.updates_local;
      remote += info.total.updates_remote;
    }
    return static_cast<double>(remote) / static_cast<double>(local + remote);
  };
  const double p2 = remote_share(2);
  const double p8 = remote_share(8);
  const double p32 = remote_share(32);
  EXPECT_LT(p2, p8);
  EXPECT_LT(p8, p32);
  EXPECT_NEAR(p2, 0.5, 0.1);
  EXPECT_NEAR(p32, 31.0 / 32.0, 0.05);
}

}  // namespace
}  // namespace retra::para

// Live-repo self-test: retra_analyze must run clean over this checkout.
// Any annotation gap, layering violation, or protocol/metrics doc drift
// introduced by a change fails here, with the same file:line message the
// CLI prints.  RETRA_REPO_ROOT is injected by tests/CMakeLists.txt.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "analysis.hpp"

namespace retra::analyze {
namespace {

TEST(AnalyzeRepo, WholeTreeIsClean) {
  const std::filesystem::path root(RETRA_REPO_ROOT);
  ASSERT_TRUE(std::filesystem::is_directory(root / "src"))
      << "repo root not found at " << root;
  const AnalysisInput input = load_repo(root);
  ASSERT_GT(input.files.size(), 100u) << "walk found too few files";
  ASSERT_FALSE(input.protocol_doc.empty());
  ASSERT_FALSE(input.metrics_doc.empty());

  std::string report;
  const auto findings = analyze_all(input);
  for (const Finding& f : findings) {
    report += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
              f.message + "\n";
  }
  EXPECT_TRUE(findings.empty()) << report;
}

// The annotated source tree must contain real annotation usage — this
// guards against the coverage rule silently matching nothing (e.g. a
// tokenizer regression that stops recognising class bodies).
TEST(AnalyzeRepo, AnnotationsArePresentInTree) {
  const AnalysisInput input = load_repo(RETRA_REPO_ROOT);
  int guarded = 0, io_marked = 0, mutex_members = 0;
  for (const SourceFile& f : input.files) {
    if (f.path.rfind("src/", 0) != 0) continue;
    for (std::size_t pos = f.content.find("RETRA_GUARDED_BY");
         pos != std::string::npos;
         pos = f.content.find("RETRA_GUARDED_BY", pos + 1)) {
      ++guarded;
    }
    for (std::size_t pos = f.content.find("RETRA_IO_THREAD_ONLY");
         pos != std::string::npos;
         pos = f.content.find("RETRA_IO_THREAD_ONLY", pos + 1)) {
      ++io_marked;
    }
    for (std::size_t pos = f.content.find("support::Mutex");
         pos != std::string::npos;
         pos = f.content.find("support::Mutex", pos + 1)) {
      ++mutex_members;
    }
  }
  EXPECT_GE(guarded, 10) << "mutex-adjacent members lost their annotations";
  EXPECT_GE(io_marked, 5) << "I/O-thread markers disappeared";
  EXPECT_GE(mutex_members, 4) << "annotated Mutex usage disappeared";
}

}  // namespace
}  // namespace retra::analyze

#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/msg/thread_comm.hpp"
#include "retra/para/dist_verify.hpp"
#include "retra/para/parallel_solver.hpp"

namespace retra::para {
namespace {

TEST(DistVerify, CleanDatabasePasses) {
  ParallelConfig config;
  config.ranks = 4;
  const auto result = build_parallel(game::AwariFamily{}, 6, config);
  msg::ThreadWorld world(config.ranks);
  for (int level = 0; level <= 6; ++level) {
    const game::AwariLevel game(level);
    const VerifySummary summary = verify_level_distributed(
        game, level, *result.database, world);
    ASSERT_TRUE(summary.ok()) << "level " << level << ": "
                              << summary.first_error;
    ASSERT_EQ(summary.positions_checked, idx::level_size(level));
  }
}

TEST(DistVerify, KalahWithSameMoverExits) {
  ParallelConfig config;
  config.ranks = 3;
  const auto result = build_parallel(game::KalahFamily{}, 6, config);
  msg::ThreadWorld world(config.ranks);
  for (int level = 0; level <= 6; ++level) {
    const game::KalahLevel game(level);
    const VerifySummary summary = verify_level_distributed(
        game, level, *result.database, world);
    ASSERT_TRUE(summary.ok()) << summary.first_error;
  }
}

TEST(DistVerify, DetectsADoctoredValue) {
  // Rebuild, then flip one stored value through the raw storage and watch
  // the distributed pass localise an inconsistency.  (The corrupted
  // position itself and/or its neighbours fail; a flip is never silent.)
  ParallelConfig config;
  config.ranks = 4;
  auto result = build_parallel(game::AwariFamily{}, 5, config);
  auto& ddb = *result.database;

  // Corrupt: rewrite level 5 with one value changed by rebuilding the
  // distributed database from doctored shards.
  DistributedDatabase doctored(ddb.scheme(), ddb.block_size(), ddb.ranks(),
                               ddb.replicated());
  for (int level = 0; level <= 5; ++level) {
    std::vector<std::vector<db::Value>> storage;
    for (int rank = 0; rank < ddb.ranks(); ++rank) {
      storage.push_back(ddb.read_rank_shard(level, rank));
    }
    if (level == 5) {
      // Find a nonempty shard and nudge a value out of range of truth.
      for (auto& shard : storage) {
        if (shard.empty()) continue;
        shard[shard.size() / 2] =
            static_cast<db::Value>(shard[shard.size() / 2] == 5 ? -5 : 5);
        break;
      }
    }
    doctored.push_level_shards(level, idx::level_size(level),
                               std::move(storage));
  }

  msg::ThreadWorld world(config.ranks);
  std::uint64_t failures = 0;
  for (int level = 0; level <= 5; ++level) {
    const game::AwariLevel game(level);
    failures += verify_level_distributed(game, level, doctored, world)
                    .failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(DistVerify, WorksWithThreadsAndTinyBuffers) {
  ParallelConfig config;
  config.ranks = 6;
  const auto result = build_parallel(game::AwariFamily{}, 5, config);
  msg::ThreadWorld world(config.ranks);
  const game::AwariLevel game(5);
  const VerifySummary summary = verify_level_distributed(
      game, 5, *result.database, world, /*combine_bytes=*/1,
      /*use_threads=*/true);
  EXPECT_TRUE(summary.ok()) << summary.first_error;
}

TEST(DistVerify, ReplicatedDatabaseNeedsNoMessages) {
  ParallelConfig config;
  config.ranks = 3;
  config.replicate_lower = true;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);
  msg::ThreadWorld world(config.ranks);
  const game::AwariLevel game(4);
  const VerifySummary summary =
      verify_level_distributed(game, 4, *result.database, world);
  EXPECT_TRUE(summary.ok()) << summary.first_error;
  // Every probe resolves locally against the replicas.
  std::uint64_t sent = 0;
  for (int r = 0; r < config.ranks; ++r) {
    sent += world.endpoint(r).transport_stats().messages_sent;
  }
  EXPECT_EQ(sent, 0u);
}

}  // namespace
}  // namespace retra::para

// The chaos suite: whole parallel builds run over a transport that drops,
// duplicates, reorders, delays and corrupts frames — and the gathered
// database must still be bit-identical to the sequential solver's, for
// every fault plan, partition scheme and driver.  Scheduled rank crashes
// must abort the build cleanly and a follow-up invocation must resume
// from the checkpoint directory and finish with the exact same bits.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "retra/game/awari_level.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/msg/fault_comm.hpp"
#include "retra/para/dist_verify.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

namespace fs = std::filesystem;

struct NamedPlan {
  const char* name;
  msg::FaultPlan plan;
};

std::vector<NamedPlan> chaos_plans() {
  std::vector<NamedPlan> plans;
  msg::FaultPlan p;
  p.seed = 0xc4a05;
  p.drop = 0.2;
  plans.push_back({"drop", p});
  p = {};
  p.seed = 0xc4a05;
  p.duplicate = 0.2;
  plans.push_back({"duplicate", p});
  p = {};
  p.seed = 0xc4a05;
  p.reorder = 0.2;
  plans.push_back({"reorder", p});
  p = {};
  p.seed = 0xc4a05;
  p.delay = 0.2;
  p.max_delay_ticks = 8;
  plans.push_back({"delay", p});
  p = {};
  p.seed = 0xc4a05;
  p.drop = 0.1;
  p.duplicate = 0.1;
  p.reorder = 0.1;
  p.delay = 0.1;
  p.max_delay_ticks = 8;
  p.corrupt = 0.05;
  plans.push_back({"everything", p});
  return plans;
}

ParallelConfig chaos_config(const msg::FaultPlan& plan,
                            PartitionScheme scheme, bool async) {
  ParallelConfig config;
  config.ranks = 4;
  config.scheme = scheme;
  config.block_size = 16;
  config.combine_bytes = 128;
  config.use_threads = true;
  config.async = async;
  config.fault_plan = plan;
  return config;
}

// Every fault plan x partition scheme x driver, for two games: the
// database that comes out must be the sequential solver's, bit for bit.
TEST(Chaos, AwariSolvesAreExactUnderEveryPlanSchemeAndDriver) {
  const auto expected = ra::build_database(game::AwariFamily{}, 4);
  for (const NamedPlan& named : chaos_plans()) {
    for (PartitionScheme scheme :
         {PartitionScheme::kCyclic, PartitionScheme::kBlockCyclic}) {
      for (bool async : {false, true}) {
        const ParallelConfig config =
            chaos_config(named.plan, scheme, async);
        const ParallelResult result =
            build_parallel(game::AwariFamily{}, 4, config);
        ASSERT_TRUE(result.completed());
        ASSERT_EQ(result.database->gather(), expected)
            << "plan=" << named.name << " seed=" << named.plan.seed
            << " scheme=" << scheme_name(scheme)
            << " driver=" << (async ? "async" : "bsp");
      }
    }
  }
}

TEST(Chaos, KalahSolvesAreExactUnderEveryPlanSchemeAndDriver) {
  const auto expected = ra::build_database(game::KalahFamily{}, 4);
  for (const NamedPlan& named : chaos_plans()) {
    for (PartitionScheme scheme :
         {PartitionScheme::kCyclic, PartitionScheme::kBlockCyclic}) {
      for (bool async : {false, true}) {
        const ParallelConfig config =
            chaos_config(named.plan, scheme, async);
        const ParallelResult result =
            build_parallel(game::KalahFamily{}, 4, config);
        ASSERT_TRUE(result.completed());
        ASSERT_EQ(result.database->gather(), expected)
            << "plan=" << named.name << " seed=" << named.plan.seed
            << " scheme=" << scheme_name(scheme)
            << " driver=" << (async ? "async" : "bsp");
      }
    }
  }
}

// The sequential driver makes the entire chaotic run deterministic: two
// builds from the same seed report identical fault counters.
TEST(Chaos, SequentialDriverReplaysFaultCountersFromSeed) {
  msg::FaultPlan plan;
  plan.seed = 0xabcde;
  plan.drop = 0.15;
  plan.duplicate = 0.1;
  plan.corrupt = 0.1;
  ParallelConfig config;
  config.ranks = 3;
  config.combine_bytes = 64;
  config.fault_plan = plan;
  const auto a = build_parallel(game::AwariFamily{}, 4, config);
  const auto b = build_parallel(game::AwariFamily{}, 4, config);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].faults.dropped, b.levels[i].faults.dropped);
    EXPECT_EQ(a.levels[i].faults.duplicated, b.levels[i].faults.duplicated);
    EXPECT_EQ(a.levels[i].faults.corrupted, b.levels[i].faults.corrupted);
    EXPECT_EQ(a.levels[i].faults.forwarded, b.levels[i].faults.forwarded);
    EXPECT_EQ(a.levels[i].reliability.retries,
              b.levels[i].reliability.retries);
    EXPECT_EQ(a.levels[i].reliability.delivered,
              b.levels[i].reliability.delivered);
  }
  EXPECT_EQ(a.database->gather(), b.database->gather());
}

TEST(Chaos, FaultFreeRunReportsAllZeroCounters) {
  ParallelConfig config;
  config.ranks = 4;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);
  for (const LevelRunInfo& info : result.levels) {
    EXPECT_EQ(info.faults.forwarded, 0u);
    EXPECT_EQ(info.faults.dropped, 0u);
    EXPECT_EQ(info.faults.duplicated, 0u);
    EXPECT_EQ(info.faults.reordered, 0u);
    EXPECT_EQ(info.faults.delayed, 0u);
    EXPECT_EQ(info.faults.corrupted, 0u);
    EXPECT_EQ(info.reliability.data_sent, 0u);
    EXPECT_EQ(info.reliability.retries, 0u);
    EXPECT_EQ(info.reliability.delivered, 0u);
    EXPECT_EQ(info.reliability.duplicates_suppressed, 0u);
    EXPECT_EQ(info.reliability.corrupt_dropped, 0u);
  }
}

// A plan whose only scheduled event never fires (crash far beyond the
// last level) still routes everything through the reliability stack: the
// protocol must be pure overhead — no retries, no duplicates, and the
// same database.
TEST(Chaos, IdleReliabilityStackIsExactAndRetryFree) {
  msg::FaultPlan plan;
  plan.crash_rank = 0;
  plan.crash_level = 1000;
  ParallelConfig config;
  config.ranks = 4;
  config.fault_plan = plan;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
  std::uint64_t data_sent = 0;
  for (const LevelRunInfo& info : result.levels) {
    EXPECT_EQ(info.faults.dropped, 0u);
    EXPECT_EQ(info.faults.corrupted, 0u);
    EXPECT_EQ(info.reliability.retries, 0u);
    EXPECT_EQ(info.reliability.duplicates_suppressed, 0u);
    EXPECT_EQ(info.reliability.corrupt_dropped, 0u);
    EXPECT_EQ(info.reliability.data_sent, info.reliability.delivered);
    data_sent += info.reliability.data_sent;
  }
  EXPECT_GT(data_sent, 0u);
}

TEST(Chaos, InjectedFaultsShowUpInTheLevelCounters) {
  msg::FaultPlan plan;
  plan.seed = 0x77;
  plan.drop = 0.2;
  ParallelConfig config;
  config.ranks = 4;
  config.combine_bytes = 64;
  config.fault_plan = plan;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);
  std::uint64_t dropped = 0, retries = 0, delivered = 0;
  for (const LevelRunInfo& info : result.levels) {
    dropped += info.faults.dropped;
    retries += info.reliability.retries;
    delivered += info.reliability.delivered;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(retries, 0u);
  EXPECT_GT(delivered, 0u);
}

class CrashDrill : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("retra_chaos_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Levels 0..max of the resumed database re-audited under the
  // distributed-memory discipline.
  template <typename Family>
  void verify_all_levels(const Family& family, int max_level,
                         const DistributedDatabase& ddb) {
    msg::ThreadWorld world(ddb.ranks());
    for (int level = 0; level <= max_level; ++level) {
      const VerifySummary summary =
          verify_level_distributed(family.level(level), level, ddb, world);
      EXPECT_TRUE(summary.ok())
          << "level " << level << ": " << summary.first_error;
    }
  }

  std::string dir_;
};

TEST_F(CrashDrill, SequentialBuildAbortsAndResumesBitIdentically) {
  ParallelConfig config;
  config.ranks = 4;
  config.checkpoint_dir = dir_;
  config.fault_plan.seed = 11;
  config.fault_plan.crash_rank = 2;
  config.fault_plan.crash_level = 3;
  config.fault_plan.crash_after_sends = 10;

  const ParallelResult crashed =
      build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_FALSE(crashed.completed());
  EXPECT_EQ(crashed.aborted_level, 3);
  EXPECT_EQ(crashed.crashed_rank, 2);
  EXPECT_EQ(crashed.levels.size(), 3u);  // levels 0..2 finished

  // The "repaired node" comes back: same configuration, crash disarmed.
  ParallelConfig resume = config;
  resume.fault_plan.crash_rank = -1;
  const ParallelResult resumed =
      build_parallel(game::AwariFamily{}, 5, resume);
  EXPECT_TRUE(resumed.completed());
  ASSERT_FALSE(resumed.levels.empty());
  EXPECT_EQ(resumed.levels.front().level, 3);  // resumed, not rebuilt
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
  verify_all_levels(game::AwariFamily{}, 5, *resumed.database);
}

TEST_F(CrashDrill, ThreadedBuildUnderFrameLossRecoversFromCheckpoint) {
  ParallelConfig config;
  config.ranks = 4;
  config.use_threads = true;
  config.combine_bytes = 128;
  config.checkpoint_dir = dir_;
  config.fault_plan.seed = 23;
  config.fault_plan.drop = 0.15;
  config.fault_plan.crash_rank = 1;
  config.fault_plan.crash_level = 2;
  // Under frame loss the retransmission count — and so the total send
  // count — varies with thread scheduling; keep the trigger below the
  // level's deterministic send floor so the crash always fires.
  config.fault_plan.crash_after_sends = 2;

  const ParallelResult crashed =
      build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_FALSE(crashed.completed());
  EXPECT_EQ(crashed.aborted_level, 2);
  EXPECT_EQ(crashed.crashed_rank, 1);

  // Resume still under frame loss — only the crash is gone.
  ParallelConfig resume = config;
  resume.fault_plan.crash_rank = -1;
  const ParallelResult resumed =
      build_parallel(game::AwariFamily{}, 4, resume);
  EXPECT_TRUE(resumed.completed());
  ASSERT_FALSE(resumed.levels.empty());
  EXPECT_EQ(resumed.levels.front().level, 2);
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
  verify_all_levels(game::AwariFamily{}, 4, *resumed.database);
}

TEST_F(CrashDrill, AsyncCoordinatorSurvivesACrashAndResumes) {
  ParallelConfig config;
  config.ranks = 4;
  config.use_threads = true;
  config.async = true;
  config.checkpoint_dir = dir_;
  config.fault_plan.seed = 31;
  config.fault_plan.delay = 0.1;
  config.fault_plan.max_delay_ticks = 8;
  config.fault_plan.crash_rank = 3;
  config.fault_plan.crash_level = 2;
  config.fault_plan.crash_after_sends = 10;

  const ParallelResult crashed =
      build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_FALSE(crashed.completed());
  EXPECT_EQ(crashed.aborted_level, 2);
  EXPECT_EQ(crashed.crashed_rank, 3);

  ParallelConfig resume = config;
  resume.fault_plan.crash_rank = -1;
  const ParallelResult resumed =
      build_parallel(game::AwariFamily{}, 4, resume);
  EXPECT_TRUE(resumed.completed());
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
  verify_all_levels(game::AwariFamily{}, 4, *resumed.database);
}

// A crash on the coordinator rank itself (rank 0 drives quiescence
// detection in the async driver) must also come down cleanly.
TEST_F(CrashDrill, CoordinatorRankCrashAbortsCleanly) {
  ParallelConfig config;
  config.ranks = 4;
  config.use_threads = true;
  config.async = true;
  config.checkpoint_dir = dir_;
  config.fault_plan.seed = 41;
  config.fault_plan.crash_rank = 0;
  config.fault_plan.crash_level = 2;
  config.fault_plan.crash_after_sends = 5;

  const ParallelResult crashed =
      build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_FALSE(crashed.completed());
  EXPECT_EQ(crashed.aborted_level, 2);
  EXPECT_EQ(crashed.crashed_rank, 0);

  ParallelConfig resume = config;
  resume.fault_plan.crash_rank = -1;
  resume.fault_plan.drop = 0.1;  // make the resume itself non-trivial
  const ParallelResult resumed =
      build_parallel(game::AwariFamily{}, 4, resume);
  EXPECT_TRUE(resumed.completed());
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

}  // namespace
}  // namespace retra::para

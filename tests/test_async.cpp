// The asynchronous (barrier-free) driver must produce the identical
// database: neither message arrival order nor superstep interleaving may
// influence the values, and the two-snapshot termination detector must
// never advance a phase early (an early advance trips the engine's
// "update outside a magnitude phase" / contribution-bound checks).
#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

ParallelConfig async_config(int ranks) {
  ParallelConfig config;
  config.ranks = ranks;
  config.use_threads = true;
  config.async = true;
  return config;
}

TEST(Async, AwariMatchesSequential) {
  const auto result =
      build_parallel(game::AwariFamily{}, 5, async_config(4));
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

TEST(Async, KalahMatchesSequential) {
  const auto result =
      build_parallel(game::KalahFamily{}, 5, async_config(3));
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::KalahFamily{}, 5));
}

TEST(Async, SingleRank) {
  const auto result =
      build_parallel(game::AwariFamily{}, 4, async_config(1));
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

TEST(Async, ManyRanksSmallLevels) {
  // More ranks than some levels have positions: empty shards must not
  // confuse the termination detector.
  const auto result =
      build_parallel(game::AwariFamily{}, 3, async_config(8));
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST(Async, CombiningOff) {
  ParallelConfig config = async_config(4);
  config.combine_bytes = 1;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

TEST(Async, ReplicatedLower) {
  ParallelConfig config = async_config(3);
  config.replicate_lower = true;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

TEST(Async, RepeatedRunsStayCorrect) {
  // Interleavings differ run to run; the answer must not.
  const auto expected = ra::build_database(game::AwariFamily{}, 4);
  for (int i = 0; i < 5; ++i) {
    const auto result =
        build_parallel(game::AwariFamily{}, 4, async_config(4));
    ASSERT_EQ(result.database->gather(), expected) << "run " << i;
  }
}

TEST(Async, GraphGameWithSameMoverExits) {
  game::GraphGameConfig gconfig;
  gconfig.levels = 4;
  gconfig.size0 = 12;
  gconfig.seed = 99;
  const game::GraphGame graph(gconfig);
  const auto result =
      build_parallel(graph, graph.num_levels() - 1, async_config(4));
  EXPECT_EQ(result.database->gather(),
            ra::build_database(graph, graph.num_levels() - 1));
}

}  // namespace
}  // namespace retra::para

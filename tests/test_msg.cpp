#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "retra/msg/combiner.hpp"
#include "retra/msg/mailbox.hpp"
#include "retra/msg/thread_comm.hpp"
#include "retra/msg/wire.hpp"

namespace retra::msg {
namespace {

std::vector<std::byte> bytes_of(const char* text) {
  std::vector<std::byte> out(std::strlen(text));
  std::memcpy(out.data(), text, out.size());
  return out;
}

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  box.push(Message{0, 1, bytes_of("a")});
  box.push(Message{0, 2, bytes_of("b")});
  Message m;
  ASSERT_TRUE(box.try_pop(m));
  EXPECT_EQ(m.tag, 1);
  ASSERT_TRUE(box.try_pop(m));
  EXPECT_EQ(m.tag, 2);
  EXPECT_FALSE(box.try_pop(m));
}

TEST(Mailbox, ConcurrentProducers) {
  Mailbox box;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(Message{p, 0, {}});
      }
    });
  }
  for (auto& t : producers) t.join();
  int received = 0;
  Message m;
  while (box.try_pop(m)) ++received;
  EXPECT_EQ(received, 4 * kPerProducer);
}

TEST(Wire, RoundTrip) {
  std::byte buffer[32];
  WireWriter w(buffer);
  w.u64(0x0123456789abcdefULL);
  w.i16(-1234);
  w.u8(7);
  EXPECT_EQ(w.written(), 11u);
  WireReader r(buffer);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i16(), -1234);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.consumed(), 11u);
}

TEST(ThreadWorld, PointToPoint) {
  ThreadWorld world(3);
  world.endpoint(0).send(2, 9, bytes_of("hello"));
  Message m;
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  ASSERT_TRUE(world.endpoint(2).try_recv(m));
  EXPECT_EQ(m.source, 0);
  EXPECT_EQ(m.tag, 9);
  EXPECT_EQ(m.payload.size(), 5u);
}

TEST(ThreadWorld, SelfSend) {
  ThreadWorld world(1);
  world.endpoint(0).send(0, 1, bytes_of("x"));
  Message m;
  ASSERT_TRUE(world.endpoint(0).try_recv(m));
  EXPECT_EQ(m.source, 0);
}

TEST(ThreadWorld, TransportStatsCount) {
  ThreadWorld world(2);
  world.endpoint(0).send(1, 1, bytes_of("abcd"));
  world.endpoint(0).send(1, 1, bytes_of("ef"));
  Message m;
  while (world.endpoint(1).try_recv(m)) {
  }
  EXPECT_EQ(world.endpoint(0).transport_stats().messages_sent, 2u);
  EXPECT_EQ(world.endpoint(0).transport_stats().bytes_sent, 6u);
  EXPECT_EQ(world.endpoint(1).transport_stats().messages_received, 2u);
  EXPECT_EQ(world.endpoint(1).transport_stats().bytes_received, 6u);
}

TEST(Combiner, CombinesUpToFlushSize) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/8);
  const std::uint32_t record = 0xdeadbeef;
  combiner.append(1, &record, 4);  // fits
  combiner.append(1, &record, 4);  // fills exactly
  combiner.append(1, &record, 4);  // forces a flush of the first two
  Message m;
  ASSERT_TRUE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(m.payload.size(), 8u);
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  combiner.flush_all();
  ASSERT_TRUE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(m.payload.size(), 4u);
  EXPECT_EQ(combiner.stats().records, 3u);
  EXPECT_EQ(combiner.stats().messages, 2u);
  EXPECT_EQ(combiner.stats().payload_bytes, 12u);
}

TEST(Combiner, FlushBytesOneDisablesCombining) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/1);
  const std::uint64_t record = 42;
  combiner.append(1, &record, 8);
  combiner.append(1, &record, 8);
  combiner.flush_all();
  Message m;
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) {
    EXPECT_EQ(m.payload.size(), 8u);
    ++messages;
  }
  EXPECT_EQ(messages, 2);
}

TEST(Combiner, SeparateDestinationsSeparateBuffers) {
  ThreadWorld world(3);
  Combiner combiner(world.endpoint(0), 5, 1024);
  const std::uint32_t record = 1;
  combiner.append(1, &record, 4);
  combiner.append(2, &record, 4);
  combiner.flush_all();
  Message m;
  ASSERT_TRUE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(m.payload.size(), 4u);
  ASSERT_TRUE(world.endpoint(2).try_recv(m));
  EXPECT_EQ(m.payload.size(), 4u);
}

TEST(Combiner, PreservesRecordOrderPerDestination) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, 8);
  for (std::uint32_t i = 0; i < 10; ++i) combiner.append(1, &i, 4);
  combiner.flush_all();
  Message m;
  std::uint32_t expected = 0;
  while (world.endpoint(1).try_recv(m)) {
    for (std::size_t off = 0; off < m.payload.size(); off += 4) {
      std::uint32_t value;
      std::memcpy(&value, m.payload.data() + off, 4);
      EXPECT_EQ(value, expected++);
    }
  }
  EXPECT_EQ(expected, 10u);
}

TEST(WorkMeter, ChargesAndMerges) {
  WorkMeter a, b;
  a.charge(WorkKind::kAssign, 3);
  b.charge(WorkKind::kAssign);
  b.charge(WorkKind::kPredEdge, 7);
  a += b;
  EXPECT_EQ(a.count(WorkKind::kAssign), 4u);
  EXPECT_EQ(a.count(WorkKind::kPredEdge), 7u);
  a.clear();
  EXPECT_EQ(a.count(WorkKind::kAssign), 0u);
}

}  // namespace
}  // namespace retra::msg

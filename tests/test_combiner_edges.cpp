// Combiner edge cases: records larger than the flush threshold, the
// combining-off setting (flush_bytes = 1), exactness of the statistics,
// and flushing with nothing buffered.
#include <gtest/gtest.h>

#include <cstring>

#include "retra/msg/combiner.hpp"
#include "retra/msg/thread_comm.hpp"

namespace retra::msg {
namespace {

TEST(CombinerEdges, RecordLargerThanFlushBytesTravelsAlone) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/4);
  const std::uint64_t record = 0x0102030405060708ULL;
  for (int i = 0; i < 3; ++i) combiner.append(1, &record, 8);
  combiner.flush_all();

  Message m;
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) {
    // The buffer accepts at least one record regardless of flush_bytes,
    // so an oversize record is never split or rejected.
    EXPECT_EQ(m.payload.size(), 8u);
    std::uint64_t value;
    std::memcpy(&value, m.payload.data(), 8);
    EXPECT_EQ(value, record);
    ++messages;
  }
  EXPECT_EQ(messages, 3);
  EXPECT_EQ(combiner.stats().records, 3u);
  EXPECT_EQ(combiner.stats().messages, 3u);
  EXPECT_EQ(combiner.stats().payload_bytes, 24u);
}

TEST(CombinerEdges, FlushBytesOneSendsEveryRecordAloneWithExactStats) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/1);
  for (std::uint32_t i = 0; i < 7; ++i) combiner.append(1, &i, 4);
  combiner.flush_all();

  Message m;
  std::uint32_t expected = 0;
  while (world.endpoint(1).try_recv(m)) {
    ASSERT_EQ(m.payload.size(), 4u);
    std::uint32_t value;
    std::memcpy(&value, m.payload.data(), 4);
    EXPECT_EQ(value, expected++);
  }
  EXPECT_EQ(expected, 7u);
  EXPECT_EQ(combiner.stats().records, 7u);
  EXPECT_EQ(combiner.stats().messages, 7u);
  EXPECT_EQ(combiner.stats().payload_bytes, 28u);
}

TEST(CombinerEdges, StatsMatchTheWireExactly) {
  ThreadWorld world(3);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/10);
  // 4-byte records, mixed destinations: per destination the combiner can
  // hold two records (8 bytes); the third forces a flush.
  for (std::uint32_t i = 0; i < 11; ++i) combiner.append(1 + (i % 2), &i, 4);
  combiner.flush_all();

  std::uint64_t wire_messages = 0, wire_bytes = 0;
  Message m;
  for (int rank = 1; rank <= 2; ++rank) {
    while (world.endpoint(rank).try_recv(m)) {
      ++wire_messages;
      wire_bytes += m.payload.size();
    }
  }
  EXPECT_EQ(combiner.stats().records, 11u);
  EXPECT_EQ(combiner.stats().messages, wire_messages);
  EXPECT_EQ(combiner.stats().payload_bytes, wire_bytes);
  EXPECT_EQ(wire_bytes, 44u);  // every appended byte reached a wire message
}

TEST(CombinerEdges, FlushWithNothingBufferedSendsNothing) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/64);
  combiner.flush_all();
  combiner.flush(1);
  Message m;
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(combiner.stats().messages, 0u);
  EXPECT_EQ(combiner.stats().records, 0u);
  EXPECT_EQ(combiner.stats().payload_bytes, 0u);

  // A flush after real traffic has drained is likewise a no-op.
  const std::uint32_t record = 9;
  combiner.append(1, &record, 4);
  combiner.flush_all();
  combiner.flush_all();
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) ++messages;
  EXPECT_EQ(messages, 1);
  EXPECT_EQ(combiner.stats().messages, 1u);
}

TEST(CombinerEdges, ZeroFlushBytesBehavesAsCombiningOff) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/0);
  const std::uint16_t record = 0xbeef;
  combiner.append(1, &record, 2);
  combiner.append(1, &record, 2);
  combiner.flush_all();
  Message m;
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) {
    EXPECT_EQ(m.payload.size(), 2u);
    ++messages;
  }
  EXPECT_EQ(messages, 2);
}

}  // namespace
}  // namespace retra::msg

// Combiner edge cases: records larger than the flush threshold, the
// combining-off setting (flush_bytes = 1), exactness of the statistics,
// flushing with nothing buffered, and the bulk staging paths
// (Combiner::append_run, CombinerBank) that must be byte-for-byte
// equivalent to per-record appends.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "retra/msg/combiner.hpp"
#include "retra/msg/thread_comm.hpp"

namespace retra::msg {
namespace {

/// Every message payload queued at `endpoint`, in arrival order.
std::vector<std::vector<std::byte>> drain(Comm& endpoint) {
  std::vector<std::vector<std::byte>> payloads;
  Message m;
  while (endpoint.try_recv(m)) payloads.push_back(m.payload);
  return payloads;
}

TEST(CombinerEdges, RecordLargerThanFlushBytesTravelsAlone) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/4);
  const std::uint64_t record = 0x0102030405060708ULL;
  for (int i = 0; i < 3; ++i) combiner.append(1, &record, 8);
  combiner.flush_all();

  Message m;
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) {
    // The buffer accepts at least one record regardless of flush_bytes,
    // so an oversize record is never split or rejected.
    EXPECT_EQ(m.payload.size(), 8u);
    std::uint64_t value;
    std::memcpy(&value, m.payload.data(), 8);
    EXPECT_EQ(value, record);
    ++messages;
  }
  EXPECT_EQ(messages, 3);
  EXPECT_EQ(combiner.stats().records, 3u);
  EXPECT_EQ(combiner.stats().messages, 3u);
  EXPECT_EQ(combiner.stats().payload_bytes, 24u);
}

TEST(CombinerEdges, FlushBytesOneSendsEveryRecordAloneWithExactStats) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/1);
  for (std::uint32_t i = 0; i < 7; ++i) combiner.append(1, &i, 4);
  combiner.flush_all();

  Message m;
  std::uint32_t expected = 0;
  while (world.endpoint(1).try_recv(m)) {
    ASSERT_EQ(m.payload.size(), 4u);
    std::uint32_t value;
    std::memcpy(&value, m.payload.data(), 4);
    EXPECT_EQ(value, expected++);
  }
  EXPECT_EQ(expected, 7u);
  EXPECT_EQ(combiner.stats().records, 7u);
  EXPECT_EQ(combiner.stats().messages, 7u);
  EXPECT_EQ(combiner.stats().payload_bytes, 28u);
}

TEST(CombinerEdges, StatsMatchTheWireExactly) {
  ThreadWorld world(3);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/10);
  // 4-byte records, mixed destinations: per destination the combiner can
  // hold two records (8 bytes); the third forces a flush.
  for (std::uint32_t i = 0; i < 11; ++i) combiner.append(1 + (i % 2), &i, 4);
  combiner.flush_all();

  std::uint64_t wire_messages = 0, wire_bytes = 0;
  Message m;
  for (int rank = 1; rank <= 2; ++rank) {
    while (world.endpoint(rank).try_recv(m)) {
      ++wire_messages;
      wire_bytes += m.payload.size();
    }
  }
  EXPECT_EQ(combiner.stats().records, 11u);
  EXPECT_EQ(combiner.stats().messages, wire_messages);
  EXPECT_EQ(combiner.stats().payload_bytes, wire_bytes);
  EXPECT_EQ(wire_bytes, 44u);  // every appended byte reached a wire message
}

TEST(CombinerEdges, FlushWithNothingBufferedSendsNothing) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/64);
  combiner.flush_all();
  combiner.flush(1);
  Message m;
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(combiner.stats().messages, 0u);
  EXPECT_EQ(combiner.stats().records, 0u);
  EXPECT_EQ(combiner.stats().payload_bytes, 0u);

  // A flush after real traffic has drained is likewise a no-op.
  const std::uint32_t record = 9;
  combiner.append(1, &record, 4);
  combiner.flush_all();
  combiner.flush_all();
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) ++messages;
  EXPECT_EQ(messages, 1);
  EXPECT_EQ(combiner.stats().messages, 1u);
}

TEST(CombinerEdges, ZeroFlushBytesBehavesAsCombiningOff) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/0);
  const std::uint16_t record = 0xbeef;
  combiner.append(1, &record, 2);
  combiner.append(1, &record, 2);
  combiner.flush_all();
  Message m;
  int messages = 0;
  while (world.endpoint(1).try_recv(m)) {
    EXPECT_EQ(m.payload.size(), 2u);
    ++messages;
  }
  EXPECT_EQ(messages, 2);
}

// ------------------------------------------------------------------
// Bulk staging: append_run and CombinerBank must be byte-for-byte
// equivalent to per-record appends — the lock-free per-chunk staging of
// the rank engines rests on exactly this equivalence.

TEST(AppendRun, MatchesPerRecordAppendsExactly) {
  // For several flush thresholds and run lengths, the message stream,
  // stats, and meter charges of append_run must equal those of the same
  // records appended one at a time.
  for (const std::size_t flush_bytes : {std::size_t{1}, std::size_t{4},
                                        std::size_t{10}, std::size_t{64}}) {
    ThreadWorld per_record_world(2);
    ThreadWorld run_world(2);
    Combiner per_record(per_record_world.endpoint(0), 5, flush_bytes);
    Combiner runs(run_world.endpoint(0), 5, flush_bytes);

    std::vector<std::uint32_t> records(23);
    for (std::uint32_t i = 0; i < records.size(); ++i) records[i] = i;
    for (const std::uint32_t r : records) per_record.append(1, &r, 4);
    // The same sequence as runs of 1, 5, and the rest.
    runs.append_run(1, records.data(), 1, 4);
    runs.append_run(1, records.data() + 1, 5, 4);
    runs.append_run(1, records.data() + 6, records.size() - 6, 4);
    per_record.flush_all();
    runs.flush_all();

    EXPECT_EQ(drain(run_world.endpoint(1)),
              drain(per_record_world.endpoint(1)))
        << "flush_bytes=" << flush_bytes;
    EXPECT_EQ(runs.stats().records, per_record.stats().records);
    EXPECT_EQ(runs.stats().messages, per_record.stats().messages);
    EXPECT_EQ(runs.stats().payload_bytes, per_record.stats().payload_bytes);
    EXPECT_EQ(run_world.endpoint(0).meter().count(WorkKind::kRecordPack),
              per_record_world.endpoint(0).meter().count(
                  WorkKind::kRecordPack))
        << "flush_bytes=" << flush_bytes;
  }
}

TEST(AppendRun, OversizeRecordsTravelAloneLikeAppend) {
  ThreadWorld world(2);
  Combiner combiner(world.endpoint(0), 5, /*flush_bytes=*/4);
  const std::uint64_t records[3] = {1, 2, 3};
  combiner.append_run(1, records, 3, 8);
  combiner.flush_all();
  const auto payloads = drain(world.endpoint(1));
  ASSERT_EQ(payloads.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(payloads[i].size(), 8u);
  EXPECT_EQ(combiner.stats().messages, 3u);
  EXPECT_EQ(combiner.stats().records, 3u);
}

TEST(CombinerBank, ReplayEqualsInterleavedAppendsGroupedByDestination) {
  // The bank groups its records per destination; replay_into must
  // reproduce exactly the stream of appending each destination's records
  // in order — the per-destination order is all a receiver can observe.
  ThreadWorld direct_world(3);
  ThreadWorld bank_world(3);
  Combiner direct(direct_world.endpoint(0), 5, /*flush_bytes=*/10);
  Combiner banked(bank_world.endpoint(0), 5, /*flush_bytes=*/10);

  CombinerBank bank;
  bank.reset(/*dests=*/3, /*record_size=*/4);
  EXPECT_TRUE(bank.empty());
  std::uint32_t next[3] = {0, 100, 200};
  // Interleave destinations while staging; append destination-grouped
  // when producing the reference stream.
  for (int i = 0; i < 9; ++i) {
    const int dest = 1 + (i % 2);
    bank.append(dest, &next[dest]);
    ++next[dest];
  }
  for (int dest = 1; dest <= 2; ++dest) {
    for (std::uint32_t r = dest == 1 ? 100u : 200u; r < next[dest]; ++r) {
      direct.append(dest, &r, 4);
    }
  }
  EXPECT_EQ(bank.records(), 9u);
  EXPECT_FALSE(bank.empty());
  bank.replay_into(banked);
  direct.flush_all();
  banked.flush_all();

  for (int rank = 1; rank <= 2; ++rank) {
    EXPECT_EQ(drain(bank_world.endpoint(rank)),
              drain(direct_world.endpoint(rank)))
        << "rank " << rank;
  }
  EXPECT_EQ(banked.stats().records, direct.stats().records);
  EXPECT_EQ(banked.stats().messages, direct.stats().messages);
  EXPECT_EQ(banked.stats().payload_bytes, direct.stats().payload_bytes);

  bank.reset(3, 4);
  EXPECT_TRUE(bank.empty());
  EXPECT_EQ(bank.records(), 0u);
}

}  // namespace
}  // namespace retra::msg

// Unit tests of the fault-injection transport (FaultyComm) and the
// reliability sublayer (ReliableComm): deterministic replay from the plan
// seed, scheduled crashes, and exactly-once in-order delivery over a
// transport that drops, duplicates, reorders, delays and corrupts frames.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "retra/msg/combiner.hpp"
#include "retra/msg/fault_comm.hpp"
#include "retra/msg/reliable_comm.hpp"
#include "retra/msg/thread_comm.hpp"

namespace retra::msg {
namespace {

std::vector<std::byte> number_payload(std::uint32_t n) {
  std::vector<std::byte> out(4);
  std::memcpy(out.data(), &n, 4);
  return out;
}

std::uint32_t number_of(const Message& m) {
  std::uint32_t v = 0;
  EXPECT_GE(m.payload.size(), 4u);
  std::memcpy(&v, m.payload.data(), 4);
  return v;
}

FaultPlan heavy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.25;
  plan.duplicate = 0.25;
  plan.reorder = 0.25;
  plan.delay = 0.25;
  plan.max_delay_ticks = 8;
  plan.corrupt = 0.15;
  return plan;
}

TEST(FaultPlan, ActiveOnlyWhenSomethingCanHappen) {
  EXPECT_FALSE(FaultPlan{}.active());
  FaultPlan drop;
  drop.drop = 0.1;
  EXPECT_TRUE(drop.active());
  FaultPlan crash;
  crash.crash_rank = 2;
  EXPECT_TRUE(crash.active());
}

TEST(FaultyComm, InactivePlanForwardsEverythingUntouched) {
  ThreadWorld world(2);
  FaultyComm faulty(world.endpoint(0), FaultPlan{});
  for (std::uint32_t i = 0; i < 20; ++i) {
    faulty.send(1, 7, number_payload(i));
  }
  Message m;
  for (std::uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(world.endpoint(1).try_recv(m));
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(number_of(m), i);
  }
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(faulty.fault_stats().forwarded, 20u);
  EXPECT_EQ(faulty.fault_stats().dropped, 0u);
  EXPECT_EQ(faulty.fault_stats().corrupted, 0u);
}

TEST(FaultyComm, DropOneLosesEveryFrame) {
  ThreadWorld world(2);
  FaultPlan plan;
  plan.drop = 1.0;
  FaultyComm faulty(world.endpoint(0), plan);
  for (std::uint32_t i = 0; i < 10; ++i) {
    faulty.send(1, 1, number_payload(i));
  }
  Message m;
  EXPECT_FALSE(world.endpoint(1).try_recv(m));
  EXPECT_EQ(faulty.fault_stats().dropped, 10u);
  EXPECT_EQ(faulty.fault_stats().forwarded, 0u);
}

// The same seed must replay the exact same fate sequence: identical
// counters and an identical delivered stream.
TEST(FaultyComm, SameSeedReplaysIdentically) {
  auto run = [](std::uint64_t seed) {
    ThreadWorld world(2);
    FaultyComm faulty(world.endpoint(0), heavy_plan(seed));
    std::vector<std::uint32_t> delivered;
    Message m;
    for (std::uint32_t i = 0; i < 300; ++i) {
      faulty.send(1, 1, number_payload(i));
      while (world.endpoint(1).try_recv(m)) delivered.push_back(number_of(m));
    }
    // Idle sends of a second tag advance virtual time so held frames
    // drain; they are addressed to rank 0 and ignored.
    for (int i = 0; i < 64; ++i) {
      if (!faulty.crashed()) faulty.send(0, 2, number_payload(0));
      while (world.endpoint(1).try_recv(m)) delivered.push_back(number_of(m));
    }
    return std::make_pair(faulty.fault_stats(), delivered);
  };
  const auto [stats_a, seen_a] = run(0xfeedface);
  const auto [stats_b, seen_b] = run(0xfeedface);
  EXPECT_EQ(stats_a.forwarded, stats_b.forwarded);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.reordered, stats_b.reordered);
  EXPECT_EQ(stats_a.delayed, stats_b.delayed);
  EXPECT_EQ(stats_a.corrupted, stats_b.corrupted);
  EXPECT_EQ(seen_a, seen_b);

  const auto [stats_c, seen_c] = run(0xdecafbad);
  EXPECT_NE(seen_a, seen_c) << "different seed produced the same run";
}

TEST(FaultyComm, CrashFiresAfterScheduledSendOfTheCrashLevel) {
  ThreadWorld world(2);
  FaultPlan plan;
  plan.crash_rank = 0;
  plan.crash_level = 2;
  plan.crash_after_sends = 3;
  FaultyComm faulty(world.endpoint(0), plan);

  faulty.set_level(1);  // wrong level: unlimited sends survive
  for (std::uint32_t i = 0; i < 10; ++i) faulty.send(1, 1, number_payload(i));
  EXPECT_FALSE(faulty.crashed());

  faulty.set_level(2);  // armed; completes 3 sends, dies on the 4th
  for (std::uint32_t i = 0; i < 3; ++i) faulty.send(1, 1, number_payload(i));
  EXPECT_FALSE(faulty.crashed());
  try {
    faulty.send(1, 1, number_payload(99));
    FAIL() << "scheduled crash did not fire";
  } catch (const RankCrash& crash) {
    EXPECT_EQ(crash.rank, 0);
    EXPECT_EQ(crash.level, 2);
  }
  EXPECT_TRUE(faulty.crashed());
  // A dead endpoint stays dead, for receives too.
  Message m;
  EXPECT_THROW(faulty.try_recv(m), RankCrash);
  EXPECT_THROW(faulty.send(1, 1, number_payload(0)), RankCrash);
}

TEST(FaultyComm, CrashOnlyAffectsTheScheduledRank) {
  ThreadWorld world(2);
  FaultPlan plan;
  plan.crash_rank = 0;
  plan.crash_level = 0;
  FaultyComm survivor(world.endpoint(1), plan);
  survivor.set_level(0);
  for (std::uint32_t i = 0; i < 50; ++i) survivor.send(0, 1, number_payload(i));
  EXPECT_FALSE(survivor.crashed());
}

TEST(ReliableComm, FaultFreeDeliveryNeedsNoRetries) {
  ThreadWorld world(2);
  ReliableComm sender(world.endpoint(0));
  ReliableComm receiver(world.endpoint(1));
  Message m;
  for (std::uint32_t i = 0; i < 50; ++i) {
    sender.send(1, 3, number_payload(i));
    ASSERT_TRUE(receiver.try_recv(m));
    EXPECT_EQ(m.source, 0);
    EXPECT_EQ(m.tag, 3);
    EXPECT_EQ(number_of(m), i);
    sender.try_recv(m);  // absorbs the ack
  }
  EXPECT_TRUE(sender.all_acked());
  EXPECT_EQ(sender.reliable_stats().data_sent, 50u);
  EXPECT_EQ(sender.reliable_stats().retries, 0u);
  EXPECT_EQ(receiver.reliable_stats().delivered, 50u);
  EXPECT_EQ(receiver.reliable_stats().duplicates_suppressed, 0u);
  EXPECT_EQ(receiver.reliable_stats().corrupt_dropped, 0u);
  EXPECT_EQ(receiver.reliable_stats().out_of_order_held, 0u);
}

TEST(ReliableComm, ExactlyOnceInOrderOverAHostileTransport) {
  constexpr std::uint32_t kCount = 400;
  ThreadWorld world(2);
  FaultWorld faults(world, heavy_plan(0x5eed));
  std::vector<std::uint32_t> got;
  Message m;
  std::uint32_t sent = 0;
  for (std::uint64_t step = 0; step < 400'000; ++step) {
    if (sent < kCount) faults.endpoint(0).send(1, 3, number_payload(sent++));
    faults.endpoint(0).try_recv(m);  // pumps acks + retransmits
    if (faults.endpoint(1).try_recv(m)) {
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 3);
      got.push_back(number_of(m));
    }
    if (got.size() == kCount && faults.reliable(0).all_acked()) break;
  }
  ASSERT_EQ(got.size(), kCount) << "delivery did not complete";
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i], i) << "out-of-order or duplicated delivery at " << i;
  }
  EXPECT_TRUE(faults.reliable(0).all_acked());
  // The transport really was hostile and the protocol really did work.
  const FaultStats& injected = faults.faulty(0).fault_stats();
  EXPECT_GT(injected.dropped, 0u);
  EXPECT_GT(injected.duplicated, 0u);
  EXPECT_GT(injected.corrupted, 0u);
  EXPECT_GT(faults.reliable(0).reliable_stats().retries, 0u);
  EXPECT_GT(faults.reliable(1).reliable_stats().duplicates_suppressed, 0u);
}

TEST(ReliableComm, ChecksumDetectsCorruptionAndRetryHealsIt) {
  constexpr std::uint32_t kCount = 200;
  ThreadWorld world(2);
  FaultPlan plan;
  plan.seed = 7;
  plan.corrupt = 0.5;
  FaultWorld faults(world, plan);
  std::vector<std::uint32_t> got;
  Message m;
  std::uint32_t sent = 0;
  for (std::uint64_t step = 0; step < 200'000; ++step) {
    if (sent < kCount) faults.endpoint(0).send(1, 1, number_payload(sent++));
    faults.endpoint(0).try_recv(m);
    if (faults.endpoint(1).try_recv(m)) got.push_back(number_of(m));
    if (got.size() == kCount && faults.reliable(0).all_acked()) break;
  }
  ASSERT_EQ(got.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) ASSERT_EQ(got[i], i);
  EXPECT_GT(faults.faulty(0).fault_stats().corrupted, 0u);
  // Corruption hits data frames (counted at the receiver) and ack frames
  // (counted back at the sender); at 50% at least one data frame loses.
  EXPECT_GT(faults.reliable(1).reliable_stats().corrupt_dropped +
                faults.reliable(0).reliable_stats().corrupt_dropped,
            0u);
}

// The Combiner is what actually feeds this stack in the engine: combined
// buffers must cross a faulty transport intact and in order.
TEST(ReliableComm, CombinerPayloadsSurviveTheFaultyStack) {
  constexpr std::uint32_t kRecords = 120;
  ThreadWorld world(2);
  FaultPlan plan = heavy_plan(99);
  plan.corrupt = 0.3;
  FaultWorld faults(world, plan);
  Combiner combiner(faults.endpoint(0), 3, /*flush_bytes=*/12);
  for (std::uint32_t i = 0; i < kRecords; ++i) combiner.append(1, &i, 4);
  combiner.flush_all();

  std::vector<std::uint32_t> got;
  Message m;
  for (std::uint64_t step = 0; step < 200'000; ++step) {
    faults.endpoint(0).try_recv(m);
    if (faults.endpoint(1).try_recv(m)) {
      EXPECT_EQ(m.tag, 3);
      ASSERT_EQ(m.payload.size() % 4, 0u);
      for (std::size_t off = 0; off < m.payload.size(); off += 4) {
        std::uint32_t value;
        std::memcpy(&value, m.payload.data() + off, 4);
        got.push_back(value);
      }
    }
    if (got.size() == kRecords && faults.reliable(0).all_acked()) break;
  }
  ASSERT_EQ(got.size(), kRecords);
  for (std::uint32_t i = 0; i < kRecords; ++i) ASSERT_EQ(got[i], i);
}

}  // namespace
}  // namespace retra::msg

// The retrograde step lives or dies on move/unmove duality: the multiset of
// predecessor edges reported by predecessors() must be exactly the inverse
// of the multiset of same-level (non-capturing) forward edges.  These tests
// verify that exhaustively for every position of the small levels.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "retra/game/awari.hpp"
#include "retra/index/board_index.hpp"

namespace retra::game {
namespace {

using Edge = std::pair<idx::Index, idx::Index>;  // (from, to), same level

std::map<Edge, int> forward_edges(int level) {
  std::map<Edge, int> edges;
  idx::for_each_board(level, [&](const Board& board, idx::Index i) {
    for (const auto& m : legal_moves(board)) {
      if (m.captured == 0) {
        ++edges[{i, idx::rank(m.after)}];
      }
    }
  });
  return edges;
}

std::map<Edge, int> backward_edges(int level) {
  std::map<Edge, int> edges;
  std::vector<Board> preds;
  idx::for_each_board(level, [&](const Board& board, idx::Index i) {
    predecessors(board, preds);
    for (const Board& q : preds) {
      ++edges[{idx::rank(q), i}];
    }
  });
  return edges;
}

class UnmoveDuality : public ::testing::TestWithParam<int> {};

TEST_P(UnmoveDuality, PredecessorsInvertNonCaptureMoves) {
  const int level = GetParam();
  const auto forward = forward_edges(level);
  const auto backward = backward_edges(level);
  EXPECT_EQ(forward, backward) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, UnmoveDuality,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(Unmoves, PredecessorBoardsAreSameLevelAndDistinctOrigins) {
  std::vector<Board> preds;
  idx::for_each_board(5, [&](const Board& board, idx::Index) {
    predecessors(board, preds);
    for (const Board& q : preds) {
      ASSERT_EQ(idx::stones_on(q), 5);
      ASSERT_NE(q, board);  // sowing always moves stones: no self-loops
    }
  });
}

TEST(Unmoves, KnownSimpleCase) {
  // [1 0 0 0 0 0 | 0...] (one stone in the mover's pit 0, terminal for the
  // mover).  Its predecessors must be positions where the previous mover
  // sowed a final stone into what is now pit 0 — i.e. pit 6 of the
  // predecessor's frame... enumerated by hand for level 1: the only
  // level-1 boards with a legal non-capturing move are those with the
  // stone in the previous mover's pit 5 (sowing it into pit 6 feeds the
  // starving opponent).
  const Board target = board_from_string("1 0 0 0 0 0  0 0 0 0 0 0");
  std::vector<Board> preds;
  predecessors(target, preds);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], board_from_string("0 0 0 0 0 1  0 0 0 0 0 0"));
}

TEST(Unmoves, TerminalBoardsStillHavePredecessors) {
  // The empty board has no predecessors (no non-capturing move yields it).
  const Board empty{};
  std::vector<Board> preds;
  predecessors(empty, preds);
  EXPECT_TRUE(preds.empty());
}

TEST(Unmoves, GrandSlamSowingIsAPredecessorEdge) {
  // [2 0 0 0 0 0 | 0...] arises from [0 0 0 0 0 1 | 1 0 0 0 0 0] via the
  // forfeited grand slam in GrandSlam.ForfeitsCaptureButMoveStands.
  const Board target = board_from_string("2 0 0 0 0 0  0 0 0 0 0 0");
  std::vector<Board> preds;
  predecessors(target, preds);
  const Board slam = board_from_string("0 0 0 0 0 1  1 0 0 0 0 0");
  bool found = false;
  for (const Board& q : preds) {
    if (q == slam) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace retra::game

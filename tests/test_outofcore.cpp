// The out-of-core contract: a build under any working-set budget — even
// one so tight every completed level spills and thrashes — produces a
// database bit-identical to the in-memory build, with identical
// EngineStats, for every rank count and threads-per-rank; peak decoded
// residency respects the budget; and a crashed out-of-core build resumes
// from its checkpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "retra/db/db_io.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/para/checkpoint.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

namespace fs = std::filesystem;

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("retra_oc_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fresh scratch directory under the test's root (builds must not
  /// share scratch space).
  std::string scratch(const std::string& tag) {
    return dir_ + "/" + tag;
  }

  std::string dir_;
};

StoreConfig out_of_core(const std::string& scratch_dir,
                        std::uint64_t budget_bytes) {
  StoreConfig store;
  store.working_set_bytes = budget_bytes;
  store.scratch_dir = scratch_dir;
  store.block_positions = 200;  // small blocks: realistic fault traffic
  return store;
}

void expect_stats_eq(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.updates_remote, b.updates_remote);
  EXPECT_EQ(a.updates_local, b.updates_local);
  EXPECT_EQ(a.lookups_remote, b.lookups_remote);
  EXPECT_EQ(a.lookups_local, b.lookups_local);
  EXPECT_EQ(a.replies_sent, b.replies_sent);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.zero_filled, b.zero_filled);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

struct GridPoint {
  int ranks;
  int threads;
  std::uint64_t budget_bytes;
};

class OutOfCoreGrid : public OutOfCoreTest,
                      public ::testing::WithParamInterface<GridPoint> {};

TEST_P(OutOfCoreGrid, MatchesInMemoryBitForBitWithIdenticalStats) {
  const GridPoint point = GetParam();
  constexpr int kLevel = 6;

  ParallelConfig reference_config;
  reference_config.ranks = point.ranks;
  const ParallelResult reference =
      build_parallel(game::AwariFamily{}, kLevel, reference_config);

  ParallelConfig config = reference_config;
  config.threads_per_rank = point.threads;
  config.oversubscribe = point.threads > 1;
  config.store = out_of_core(scratch("s"), point.budget_bytes);
  const ParallelResult constrained =
      build_parallel(game::AwariFamily{}, kLevel, config);

  // The database and every per-level, per-rank statistic are identical.
  EXPECT_EQ(constrained.database->gather(), reference.database->gather());
  ASSERT_EQ(constrained.levels.size(), reference.levels.size());
  for (std::size_t l = 0; l < reference.levels.size(); ++l) {
    expect_stats_eq(constrained.levels[l].total, reference.levels[l].total);
    ASSERT_EQ(constrained.levels[l].per_rank.size(),
              reference.levels[l].per_rank.size());
    for (std::size_t r = 0; r < reference.levels[l].per_rank.size(); ++r) {
      expect_stats_eq(constrained.levels[l].per_rank[r],
                      reference.levels[l].per_rank[r]);
    }
  }

  // Every non-empty completed level spilled on every rank (empty shards
  // — e.g. level 0's single position lands on one rank only — have
  // nothing to write), and residency respected the budget (blocks of 200
  // positions decode to at most 400 bytes, so every grid budget can hold
  // at least one block).
  for (int rank = 0; rank < config.ranks; ++rank) {
    const LevelStore& store = constrained.database->store(rank);
    std::uint64_t nonempty = 0;
    for (int l = 0; l <= kLevel; ++l) {
      if (store.shard_size(l) > 0) ++nonempty;
    }
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.levels_spilled, nonempty);
    EXPECT_LE(stats.peak_resident_bytes, point.budget_bytes);
  }

  // The persisted artifacts agree byte for byte.
  const std::string ref_path = dir_ + "/ref.rtradb";
  const std::string ooc_path = dir_ + "/ooc.rtradb";
  db::save(reference.database->gather(), ref_path, db::Format{.version = 3});
  db::save(constrained.database->gather(), ooc_path,
           db::Format{.version = 3});
  EXPECT_EQ(read_file(ref_path), read_file(ooc_path));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OutOfCoreGrid,
    ::testing::Values(
        GridPoint{2, 1, 1u << 20},  // everything fits once faulted
        GridPoint{2, 1, 4096},      // steady eviction pressure
        GridPoint{2, 1, 512},       // barely more than one block: thrash
        GridPoint{2, 2, 4096},      // T > 1: concurrent fault-in
        GridPoint{2, 2, 512},
        GridPoint{4, 1, 4096},
        GridPoint{4, 1, 512},
        GridPoint{4, 2, 1024}));

TEST_F(OutOfCoreTest, TightBudgetActuallyFaultsAndEvicts) {
  ParallelConfig config;
  config.ranks = 2;
  // 128 bytes is smaller than one decoded 200-position block, so the
  // cache can only ever hold the single most recent (oversized) block and
  // every cross-block access evicts.
  config.store = out_of_core(scratch("s"), 128);
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 6, config);
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
  for (const LevelRunInfo& info : result.levels) {
    faults += info.store_total.faults;
    evictions += info.store_total.evictions;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(evictions, 0u);
  EXPECT_GT(result.levels.back().store_total.spill_bytes, 0u);
}

TEST_F(OutOfCoreTest, ReplicatedModeSpillsFullCopies) {
  ParallelConfig reference_config;
  reference_config.ranks = 3;
  reference_config.replicate_lower = true;
  const ParallelResult reference =
      build_parallel(game::AwariFamily{}, 5, reference_config);

  ParallelConfig config = reference_config;
  config.store = out_of_core(scratch("s"), 2048);
  const ParallelResult constrained =
      build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_EQ(constrained.database->gather(), reference.database->gather());
  for (std::size_t l = 0; l < reference.levels.size(); ++l) {
    expect_stats_eq(constrained.levels[l].total, reference.levels[l].total);
  }
}

TEST_F(OutOfCoreTest, SpilledDrainQueueChangesNothing) {
  ParallelConfig reference_config;
  reference_config.ranks = 2;
  const ParallelResult reference =
      build_parallel(game::AwariFamily{}, 6, reference_config);

  ParallelConfig config = reference_config;
  config.store = out_of_core(scratch("s"), 4096);
  config.store.queue_mem_entries = 4;  // force run-file spills constantly
  const ParallelResult constrained =
      build_parallel(game::AwariFamily{}, 6, config);

  EXPECT_EQ(constrained.database->gather(), reference.database->gather());
  for (std::size_t l = 0; l < reference.levels.size(); ++l) {
    expect_stats_eq(constrained.levels[l].total, reference.levels[l].total);
  }
  std::uint64_t spilled_records = 0;
  for (int rank = 0; rank < config.ranks; ++rank) {
    spilled_records += constrained.database->store(rank)
                           .stats()
                           .queue_spilled_records;
  }
  EXPECT_GT(spilled_records, 0u);
}

TEST_F(OutOfCoreTest, CrashedSpilledBuildResumesFromCheckpoint) {
  // Kill-and-resume drill: rank 1 dies while building level 4 of an
  // out-of-core build; a follow-up run with a fresh scratch directory
  // resumes from the checkpoint (re-spilling levels 0..3 on load) and
  // finishes identically to the sequential solver.
  ParallelConfig config;
  config.ranks = 3;
  config.checkpoint_dir = dir_ + "/ck";
  config.store = out_of_core(scratch("s1"), 2048);
  config.fault_plan.crash_rank = 1;
  config.fault_plan.crash_level = 4;
  const ParallelResult crashed =
      build_parallel(game::AwariFamily{}, 6, config);
  ASSERT_FALSE(crashed.completed());
  EXPECT_EQ(crashed.aborted_level, 4);
  EXPECT_EQ(crashed.crashed_rank, 1);

  config.fault_plan = msg::FaultPlan{};
  config.store = out_of_core(scratch("s2"), 2048);
  const ParallelResult resumed =
      build_parallel(game::AwariFamily{}, 6, config);
  ASSERT_TRUE(resumed.completed());
  ASSERT_FALSE(resumed.levels.empty());
  EXPECT_EQ(resumed.levels.front().level, 4);  // levels 0..3 were resumed
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
  // The resumed store spilled every non-empty shard: the checkpointed
  // levels 0..3 on load, then 4..6 as they completed.
  for (int rank = 0; rank < config.ranks; ++rank) {
    const LevelStore& store = resumed.database->store(rank);
    std::uint64_t nonempty = 0;
    for (int l = 0; l <= 6; ++l) {
      if (store.shard_size(l) > 0) ++nonempty;
    }
    EXPECT_EQ(store.stats().levels_spilled, nonempty);
  }
}

TEST_F(OutOfCoreTest, ThreadDriverAndAsyncDriverMatchUnderBudget) {
  ParallelConfig reference_config;
  reference_config.ranks = 3;
  const ParallelResult reference =
      build_parallel(game::AwariFamily{}, 5, reference_config);

  for (const bool async : {false, true}) {
    ParallelConfig config = reference_config;
    config.use_threads = true;
    config.async = async;
    config.store =
        out_of_core(scratch(async ? "async" : "bsp"), 2048);
    const ParallelResult constrained =
        build_parallel(game::AwariFamily{}, 5, config);
    EXPECT_EQ(constrained.database->gather(), reference.database->gather())
        << (async ? "async" : "bsp");
  }
}

}  // namespace
}  // namespace retra::para

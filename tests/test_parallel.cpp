// The distributed engine's contract: for any rank count, partition scheme,
// combining buffer size, lower-database mode and driver, the gathered
// distributed database is bit-identical to the sequential solver's.
#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

game::GraphGame test_graph(std::uint64_t seed) {
  game::GraphGameConfig config;
  config.levels = 4;
  config.size0 = 14;
  config.growth = 2.2;
  config.edge_mean = 2.5;
  config.exit_mean = 1.2;
  config.seed = seed;
  return game::GraphGame(config);
}

TEST(Parallel, SingleRankMatchesSequentialAwari) {
  ParallelConfig config;
  config.ranks = 1;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, AwariMatchesSequential) {
  ParallelConfig config;
  config.ranks = GetParam();
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

TEST_P(RankSweep, GraphGameMatchesSequential) {
  const game::GraphGame graph = test_graph(77);
  ParallelConfig config;
  config.ranks = GetParam();
  const ParallelResult result =
      build_parallel(graph, graph.num_levels() - 1, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(graph, graph.num_levels() - 1));
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

class SchemeSweep : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(SchemeSweep, AwariMatchesSequentialUnderEveryPartition) {
  ParallelConfig config;
  config.ranks = 6;
  config.scheme = GetParam();
  config.block_size = 32;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeSweep,
                         ::testing::Values(PartitionScheme::kBlock,
                                           PartitionScheme::kCyclic,
                                           PartitionScheme::kBlockCyclic));

class CombineSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CombineSweep, CombiningBufferSizeNeverChangesTheAnswer) {
  ParallelConfig config;
  config.ranks = 4;
  config.combine_bytes = GetParam();
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

INSTANTIATE_TEST_SUITE_P(Buffers, CombineSweep,
                         ::testing::Values(1, 10, 64, 256, 4096, 65536));

TEST(Parallel, ReplicatedLowerMatchesSequential) {
  ParallelConfig config;
  config.ranks = 5;
  config.replicate_lower = true;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 5, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

TEST(Parallel, ReplicatedNeverSendsLookups) {
  ParallelConfig config;
  config.ranks = 4;
  config.replicate_lower = true;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 4, config);
  for (const LevelRunInfo& info : result.levels) {
    EXPECT_EQ(info.total.lookups_remote, 0u);
    EXPECT_EQ(info.total.replies_sent, 0u);
  }
}

TEST(Parallel, ThreadDriverMatchesSequentialDriver) {
  ParallelConfig sequential;
  sequential.ranks = 4;
  ParallelConfig threaded = sequential;
  threaded.use_threads = true;
  const auto a = build_parallel(game::AwariFamily{}, 5, sequential);
  const auto b = build_parallel(game::AwariFamily{}, 5, threaded);
  EXPECT_EQ(a.database->gather(), b.database->gather());
}

TEST(Parallel, ThreadDriverGraphGame) {
  const game::GraphGame graph = test_graph(123);
  ParallelConfig config;
  config.ranks = 8;
  config.use_threads = true;
  config.combine_bytes = 64;
  const ParallelResult result =
      build_parallel(graph, graph.num_levels() - 1, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(graph, graph.num_levels() - 1));
}

TEST(Parallel, ManyRandomGraphsAcrossConfigs) {
  for (std::uint64_t seed = 300; seed < 312; ++seed) {
    const game::GraphGame graph = test_graph(seed);
    const auto expected =
        ra::build_database(graph, graph.num_levels() - 1);
    ParallelConfig config;
    config.ranks = 3 + static_cast<int>(seed % 4);
    config.scheme = seed % 2 ? PartitionScheme::kCyclic
                             : PartitionScheme::kBlock;
    config.combine_bytes = seed % 3 == 0 ? 1 : 128;
    config.replicate_lower = seed % 5 == 0;
    const ParallelResult result =
        build_parallel(graph, graph.num_levels() - 1, config);
    ASSERT_EQ(result.database->gather(), expected) << "seed " << seed;
  }
}

TEST(Parallel, StatsAccountForEveryAssignment) {
  ParallelConfig config;
  config.ranks = 4;
  const ParallelResult result =
      build_parallel(game::AwariFamily{}, 5, config);
  for (const LevelRunInfo& info : result.levels) {
    EXPECT_EQ(info.total.assignments + info.total.zero_filled, info.size)
        << "level " << info.level;
  }
}

TEST(Parallel, CombiningReducesMessagesNotRecords) {
  ParallelConfig combined;
  combined.ranks = 6;
  combined.combine_bytes = 4096;
  ParallelConfig naive = combined;
  naive.combine_bytes = 1;
  const auto with = build_parallel(game::AwariFamily{}, 6, combined);
  const auto without = build_parallel(game::AwariFamily{}, 6, naive);
  // Identical record traffic...
  std::uint64_t records_with = 0, records_without = 0;
  for (const auto& info : with.levels) {
    records_with += info.total.updates_remote + info.total.lookups_remote +
                    info.total.replies_sent;
  }
  for (const auto& info : without.levels) {
    records_without += info.total.updates_remote +
                       info.total.lookups_remote + info.total.replies_sent;
  }
  EXPECT_EQ(records_with, records_without);
  // ...but far fewer messages.
  EXPECT_LT(with.total_messages() * 10, without.total_messages());
}

TEST(Parallel, MemoryDividesAcrossRanks) {
  ParallelConfig small;
  small.ranks = 2;
  ParallelConfig large = small;
  large.ranks = 8;
  const auto a = build_parallel(game::AwariFamily{}, 6, small);
  const auto b = build_parallel(game::AwariFamily{}, 6, large);
  const auto max_bytes = [](const ParallelResult& r) {
    std::uint64_t best = 0;
    for (const auto& info : r.levels) {
      for (const std::uint64_t bytes : info.working_bytes) {
        best = std::max(best, bytes);
      }
    }
    return best;
  };
  // 4x the ranks -> roughly a quarter of the per-rank working set.
  EXPECT_LT(max_bytes(b) * 3, max_bytes(a));
}

TEST(DistributedDatabase, GatherReassemblesShards) {
  DistributedDatabase ddb(PartitionScheme::kCyclic, 1, 3, false);
  // Level of size 7, cyclic over 3 ranks.
  std::vector<std::vector<db::Value>> shards(3);
  const Partition partition = ddb.make_partition(7);
  std::vector<db::Value> values{10, -1, 2, 3, -4, 5, 6};
  for (int r = 0; r < 3; ++r) {
    shards[static_cast<std::size_t>(r)].resize(partition.local_size(r));
  }
  for (std::uint64_t i = 0; i < 7; ++i) {
    shards[static_cast<std::size_t>(partition.owner(i))]
          [partition.to_local(i)] = values[i];
  }
  ddb.push_level_shards(0, 7, std::move(shards));
  const db::Database gathered = ddb.gather();
  EXPECT_EQ(gathered.level(0), values);
}

}  // namespace
}  // namespace retra::para

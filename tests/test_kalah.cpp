#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "retra/game/awari.hpp"  // board_from_string
#include "retra/game/kalah.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/attractor_solver.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/verify.hpp"

namespace retra::game::kalah {
namespace {

Board B(const char* text) { return board_from_string(text); }

TEST(KalahMoves, SimpleSowNoBank) {
  const AppliedMove m = apply_move(B("2 0 0 0 0 0  1 0 0 0 0 0"), 0);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.banked, 0);
  EXPECT_FALSE(m.extra_turn);
  // Pits 1,2 get one stone each; pit 2 holds 1 but the opposite pit 9 is
  // empty, so no capture; rotated to the opponent.
  EXPECT_EQ(m.after, B("1 0 0 0 0 0  0 1 1 0 0 0"));
}

TEST(KalahMoves, StoreLandingGrantsExtraTurn) {
  const AppliedMove m = apply_move(B("0 0 0 0 0 1  1 0 0 0 0 0"), 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.banked, 1);
  EXPECT_TRUE(m.extra_turn);
  // Same player to move: the board is NOT rotated.
  EXPECT_EQ(m.after, B("0 0 0 0 0 0  1 0 0 0 0 0"));
}

TEST(KalahMoves, SowPastStoreBanksOne) {
  const AppliedMove m = apply_move(B("0 0 0 0 0 3  0 0 0 0 0 0"), 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.banked, 1);
  EXPECT_FALSE(m.extra_turn);
  EXPECT_EQ(m.after, B("1 1 0 0 0 0  0 0 0 0 0 0"));
}

TEST(KalahMoves, CaptureTakesOppositePit) {
  const AppliedMove m = apply_move(B("0 2 0 0 0 0  0 0 3 0 0 0"), 1);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.banked, 4);  // own last stone + 3 opposite
  EXPECT_FALSE(m.extra_turn);
  EXPECT_EQ(m.after, B("0 0 0 0 0 0  0 0 1 0 0 0"));
}

TEST(KalahMoves, NoCaptureIntoOccupiedPit) {
  // Last stone lands in own pit that already held a stone: no capture.
  const AppliedMove m = apply_move(B("0 2 0 1 0 0  0 0 3 0 0 0"), 1);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.banked, 0);
}

TEST(KalahMoves, NoCaptureInOpponentRow) {
  // Last stone in the opponent's row never captures in kalah.
  const AppliedMove m = apply_move(B("0 0 0 0 0 2  1 0 0 0 0 0"), 5);
  ASSERT_TRUE(m.legal);
  EXPECT_EQ(m.banked, 1);  // the store sow only
  EXPECT_FALSE(m.extra_turn);
}

TEST(KalahMoves, WrapResowsOriginAndMayCapture) {
  // 13 stones from pit 0: five own pits, the store, six opponent pits,
  // then back into pit 0 itself — which was emptied, so the last stone
  // captures the (just fed) opposite pit 11.
  const AppliedMove m = apply_move(B("13 0 0 0 0 0  0 0 0 0 0 0"), 0);
  ASSERT_TRUE(m.legal);
  EXPECT_TRUE(m.banked >= 1 + 1 + 1);  // store + own stone + opposite >= 3
  EXPECT_EQ(m.banked, 3);              // store 1, own 1, opposite held 1
  EXPECT_FALSE(m.extra_turn);
}

TEST(KalahMoves, StoneConservation) {
  const Board boards[] = {
      B("4 4 4 4 4 4  4 4 4 4 4 4"), B("0 2 0 1 0 3  1 0 2 0 0 1"),
      B("13 0 0 0 0 0  0 0 0 0 0 0"), B("0 0 0 0 0 7  2 2 2 0 0 0"),
  };
  for (const Board& board : boards) {
    const int before = idx::stones_on(board);
    for (const auto& m : legal_moves(board)) {
      EXPECT_EQ(idx::stones_on(m.after) + m.banked, before);
    }
  }
}

TEST(KalahTerminal, EmptyRowLosesBoard) {
  const Board board = B("0 0 0 0 0 0  2 1 0 0 0 0");
  EXPECT_TRUE(is_terminal(board));
  EXPECT_EQ(terminal_reward(board), -3);
  EXPECT_FALSE(is_terminal(B("1 0 0 0 0 0  0 0 0 0 0 0")));
}

// ---------------------------------------------------------------------
// Move/unmove duality over whole levels.

using Edge = std::pair<idx::Index, idx::Index>;

class KalahDuality : public ::testing::TestWithParam<int> {};

TEST_P(KalahDuality, PredecessorsInvertNonBankingMoves) {
  const int level = GetParam();
  std::map<Edge, int> forward, backward;
  std::vector<Board> preds;
  idx::for_each_board(level, [&](const Board& board, idx::Index i) {
    for (const auto& m : legal_moves(board)) {
      if (m.banked == 0 && !m.extra_turn) {
        ++forward[{i, idx::rank(m.after)}];
      }
    }
    predecessors(board, preds);
    for (const Board& q : preds) ++backward[{idx::rank(q), i}];
  });
  EXPECT_EQ(forward, backward) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, KalahDuality,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// ---------------------------------------------------------------------
// Solver cross-checks and the distributed build.

class KalahSolve : public ::testing::TestWithParam<int> {};

TEST_P(KalahSolve, SweepMatchesAttractorAndVerifies) {
  const int max_level = GetParam();
  db::Database database;
  for (int l = 0; l <= max_level; ++l) {
    const KalahLevel level(l);
    auto lower = [&database](int lv, idx::Index i) {
      return database.value(lv, i);
    };
    ra::SweepOptions options;
    options.record_order = true;
    const ra::SweepResult sweep = ra::solve_level(level, lower, options);
    ASSERT_EQ(sweep.values, ra::solve_level_attractor(level, lower))
        << "kalah level " << l;
    const ra::VerifyReport report =
        ra::verify_level(level, lower, sweep.values, sweep.order);
    ASSERT_TRUE(report.ok) << report.error;
    database.push_level(l, sweep.values);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, KalahSolve, ::testing::Values(5, 7));

TEST(KalahParallel, DistributedMatchesSequential) {
  para::ParallelConfig config;
  config.ranks = 5;
  const auto result = para::build_parallel(KalahFamily{}, 6, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(KalahFamily{}, 6));
}

TEST(KalahParallel, CombiningOffStillMatches) {
  para::ParallelConfig config;
  config.ranks = 4;
  config.combine_bytes = 1;
  const auto result = para::build_parallel(KalahFamily{}, 5, config);
  EXPECT_EQ(result.database->gather(),
            ra::build_database(KalahFamily{}, 5));
}

TEST(KalahValues, BoundsAndFirstLevels) {
  const auto database = ra::build_database(KalahFamily{}, 6);
  for (int l = 0; l <= 6; ++l) {
    for (const db::Value v : database.level(l)) {
      ASSERT_LE(std::abs(v), l);
    }
  }
  // One stone in the mover's pit 5: sow into the store (+1), extra turn,
  // then the row is empty and nothing remains: value +1.
  Board board{};
  board[5] = 1;
  EXPECT_EQ(database.value(1, idx::rank(board)), 1);
  // One stone in pit 0: it can never reach the store alone (sows to pit
  // 1..5 then eventually banks).  Its true value comes from the solver;
  // just pin the hand-derived chain: pit0 -> pit1 ... each sow keeps the
  // stone in the own row (opponent has no reply: their row is empty, so
  // after rotation they are terminal and forfeit the board stone).
  Board pit0{};
  pit0[0] = 1;
  // Mover sows pit0 -> pit1 (no bank), opponent's row is empty so the
  // rotated successor is terminal for them: they lose the 1 stone, i.e.
  // successor value -1, so the mover nets +1.
  EXPECT_EQ(database.value(1, idx::rank(pit0)), 1);
}

TEST(KalahValues, ExtraTurnChainsAreWorthTheBank) {
  // Two stones: pit 4 holds 1 (one short of the store) and pit 5 holds 1.
  // Playing pit 4 lands in pit 5 (no bank); playing pit 5 banks and moves
  // again.  The solver must see the double-bank line: pit5 (+1, extra),
  // then pit4... now pit4's stone sows into pit 5, then next turn banks.
  const auto database = ra::build_database(KalahFamily{}, 2);
  Board board{};
  board[4] = 1;
  board[5] = 1;
  // Best line: pit 5 banks (+1, extra turn), leaving [0 0 0 0 1 0 | 0…];
  // then pit 4 sows to pit 5 (no bank) — opponent empty row -> terminal,
  // opponent forfeits the stone (+1).  Total +2.
  EXPECT_EQ(database.value(2, idx::rank(board)), 2);
}

}  // namespace
}  // namespace retra::game::kalah

// RTRADB03 block codecs: scheme round trips, the smallest-wins chooser,
// and the malformed-stream diagnosis vocabulary (docs/FORMAT.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "retra/db/block_codec.hpp"
#include "retra/support/rng.hpp"

namespace retra::db {
namespace {

std::vector<std::uint16_t> constant_codes(std::size_t count,
                                          std::uint16_t code) {
  return std::vector<std::uint16_t>(count, code);
}

// Round-trips `codes` through one explicit scheme and expects the raw
// bit-packed bytes back.
void expect_round_trip(BlockScheme scheme,
                       const std::vector<std::uint8_t>& encoded,
                       const std::vector<std::uint16_t>& codes, int bits) {
  const std::vector<std::uint8_t> packed =
      pack_codes(codes.data(), codes.size(), bits);
  const BlockDecodeResult decoded = decode_block(
      scheme, encoded.data(), encoded.size(), codes.size(), bits);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.packed, packed);
}

TEST(BlockCodec, PackCodesMatchesCompactLayout) {
  // 4-bit: two codes per byte, low nibble first; odd tail high nibble 0.
  const std::vector<std::uint16_t> nibbles{0x5, 0x5, 0x2, 0x7, 0x3};
  EXPECT_EQ(pack_codes(nibbles.data(), nibbles.size(), 4),
            (std::vector<std::uint8_t>{0x55, 0x72, 0x03}));
  // 8-bit: one code per byte.
  const std::vector<std::uint16_t> bytes{0x00, 0xff, 0x10};
  EXPECT_EQ(pack_codes(bytes.data(), bytes.size(), 8),
            (std::vector<std::uint8_t>{0x00, 0xff, 0x10}));
  // 16-bit: little-endian.
  const std::vector<std::uint16_t> words{0x1234};
  EXPECT_EQ(pack_codes(words.data(), words.size(), 16),
            (std::vector<std::uint8_t>{0x34, 0x12}));
}

TEST(BlockCodec, RleRoundTripsAllWidths) {
  for (const int bits : {4, 8, 16}) {
    std::vector<std::uint16_t> codes;
    for (int run = 0; run < 5; ++run) {
      const auto code = static_cast<std::uint16_t>(run * 3);
      codes.insert(codes.end(), static_cast<std::size_t>(1 + run * 40),
                   code);
    }
    const std::vector<std::uint8_t> encoded =
        rle_encode(codes.data(), codes.size(), bits);
    expect_round_trip(BlockScheme::kRle, encoded, codes, bits);
  }
}

TEST(BlockCodec, RleLongRunUsesMultiByteVarint) {
  // A run of 300 needs a two-byte LEB128 varint (300 = 0xAC 0x02).
  const auto codes = constant_codes(300, 9);
  const std::vector<std::uint8_t> encoded =
      rle_encode(codes.data(), codes.size(), 4);
  EXPECT_EQ(encoded, (std::vector<std::uint8_t>{0x09, 0xAC, 0x02}));
  expect_round_trip(BlockScheme::kRle, encoded, codes, 4);
}

TEST(BlockCodec, FreqRoundTripsSkewedBlock) {
  for (const int bits : {4, 8}) {
    support::Xoshiro256 rng(11);
    std::vector<std::uint16_t> codes;
    for (int i = 0; i < 2048; ++i) {
      // ~90% zeros, the rest spread over a few symbols.
      const std::uint64_t roll = rng.below(10);
      codes.push_back(
          roll < 9 ? 0 : static_cast<std::uint16_t>(1 + rng.below(7)));
    }
    const std::vector<std::uint8_t> encoded =
        freq_encode(codes.data(), codes.size(), bits);
    ASSERT_FALSE(encoded.empty());
    expect_round_trip(BlockScheme::kFreq, encoded, codes, bits);
    // Heavy skew must beat raw packing.
    EXPECT_LT(encoded.size(), pack_codes(codes.data(), codes.size(), bits).size());
  }
}

TEST(BlockCodec, FreqDoesNotApplyWhenUseless) {
  const auto constant = constant_codes(64, 3);
  EXPECT_TRUE(freq_encode(constant.data(), constant.size(), 4).empty())
      << "single-symbol blocks have no prefix code";
  std::vector<std::uint16_t> wide{1, 2, 3, 4};
  EXPECT_TRUE(freq_encode(wide.data(), wide.size(), 16).empty())
      << "freq scheme is 4/8-bit only";
  EXPECT_TRUE(freq_encode(wide.data(), 0, 4).empty());
}

TEST(BlockCodec, EncodeBlockPicksSmallestScheme) {
  // Constant block: rle wins outright.
  const auto constant = constant_codes(512, 2);
  const EncodedBlock rle = encode_block(constant.data(), constant.size(), 4);
  EXPECT_EQ(rle.scheme, BlockScheme::kRle);
  EXPECT_LE(rle.bytes.size(), 3u);

  // High-entropy block with no repeats: nothing beats raw.
  std::vector<std::uint16_t> noisy;
  support::Xoshiro256 rng(3);
  for (int i = 0; i < 512; ++i) {
    noisy.push_back(static_cast<std::uint16_t>(rng.below(16)));
  }
  const EncodedBlock raw = encode_block(noisy.data(), noisy.size(), 4);
  EXPECT_EQ(raw.scheme, BlockScheme::kRaw);
  EXPECT_EQ(raw.bytes, pack_codes(noisy.data(), noisy.size(), 4));

  // Skewed-but-not-constant block: freq wins.
  std::vector<std::uint16_t> skewed;
  for (int i = 0; i < 512; ++i) {
    skewed.push_back(static_cast<std::uint16_t>(
        rng.below(10) < 8 ? rng.below(2) : rng.below(16)));
  }
  const EncodedBlock freq = encode_block(skewed.data(), skewed.size(), 4);
  EXPECT_EQ(freq.scheme, BlockScheme::kFreq);
  expect_round_trip(freq.scheme, freq.bytes, skewed, 4);
}

TEST(BlockCodec, EncodeBlockNeverLosesToRaw) {
  support::Xoshiro256 rng(17);
  for (const int bits : {4, 8, 16}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<std::uint16_t> codes;
      const std::size_t count = 1 + rng.below(600);
      const std::uint64_t spread = 1 + rng.below(bits == 4 ? 15 : 200);
      for (std::size_t i = 0; i < count; ++i) {
        codes.push_back(static_cast<std::uint16_t>(rng.below(spread)));
      }
      const EncodedBlock encoded =
          encode_block(codes.data(), codes.size(), bits);
      EXPECT_LE(encoded.bytes.size(),
                pack_codes(codes.data(), codes.size(), bits).size());
      expect_round_trip(encoded.scheme, encoded.bytes, codes, bits);
    }
  }
}

TEST(BlockCodec, DecodeRawRejectsWrongSize) {
  const std::vector<std::uint8_t> bytes{0x11, 0x22};
  const BlockDecodeResult r =
      decode_block(BlockScheme::kRaw, bytes.data(), bytes.size(), 16, 4);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("wrong stored size"), std::string::npos) << r.error;
}

TEST(BlockCodec, DecodeRleDiagnosesMalformedStreams) {
  const auto codes = constant_codes(16, 3);
  std::vector<std::uint8_t> good = rle_encode(codes.data(), codes.size(), 4);
  ASSERT_EQ(good, (std::vector<std::uint8_t>{0x03, 0x10}));

  const auto diagnose = [&](std::vector<std::uint8_t> bytes) {
    return decode_block(BlockScheme::kRle, bytes.data(), bytes.size(), 16,
                        4);
  };
  BlockDecodeResult r = diagnose({0x03});  // code with no run length
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;

  r = diagnose({0x03, 0x00});  // zero-length run
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("zero-length"), std::string::npos) << r.error;

  r = diagnose({0x03, 0x20});  // run of 32 overflows the 16-position block
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("overflows"), std::string::npos) << r.error;

  r = diagnose({0x03, 0x10, 0x01, 0x01});  // complete block, then more
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("trailing"), std::string::npos) << r.error;

  r = diagnose({0x13, 0x10});  // code 0x13 exceeds 4-bit packing
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exceeds"), std::string::npos) << r.error;
}

TEST(BlockCodec, DecodeFreqDiagnosesMalformedStreams) {
  std::vector<std::uint16_t> codes;
  for (int i = 0; i < 32; ++i) {
    codes.push_back(static_cast<std::uint16_t>(i % 3));
  }
  std::vector<std::uint8_t> good =
      freq_encode(codes.data(), codes.size(), 4);
  ASSERT_FALSE(good.empty());
  ASSERT_TRUE(decode_block(BlockScheme::kFreq, good.data(), good.size(),
                           codes.size(), 4)
                  .ok);

  const auto diagnose = [&](std::vector<std::uint8_t> bytes,
                            int bits = 4) {
    return decode_block(BlockScheme::kFreq, bytes.data(), bytes.size(),
                        codes.size(), bits);
  };

  BlockDecodeResult r = diagnose(good, 16);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("16-bit"), std::string::npos) << r.error;

  r = diagnose({0x01, 0x00});  // symbol count below 2
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("symbol count"), std::string::npos) << r.error;

  std::vector<std::uint8_t> unsorted = good;
  std::swap(unsorted[2], unsorted[4]);  // swap the first two symbols
  r = diagnose(unsorted);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("ascending"), std::string::npos) << r.error;

  std::vector<std::uint8_t> overfull = good;
  overfull[3] = 1;  // force every code length to 1: Kraft over-full
  overfull[5] = 1;
  overfull[7] = 1;
  r = diagnose(overfull);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not complete"), std::string::npos) << r.error;

  std::vector<std::uint8_t> truncated = good;
  truncated.pop_back();
  r = diagnose(truncated);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace retra::db

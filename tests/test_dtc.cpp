#include <gtest/gtest.h>

#include <algorithm>

#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/dtc.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/ra/sweep_solver.hpp"

namespace retra::ra {
namespace {

using game::Exit;
using game::GraphLevel;

db::Value no_lower(int, idx::Index) {
  ADD_FAILURE() << "unexpected lower lookup";
  return 0;
}

std::vector<Dtc> solve_dtc(const GraphLevel& level) {
  const SweepResult result = solve_level(level, no_lower);
  return compute_dtc(level, no_lower, result.values);
}

TEST(Dtc, ExitConvertsInOnePly) {
  const GraphLevel level =
      GraphLevel::custom(0, {{}}, {{Exit{2, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve_dtc(level), (std::vector<Dtc>{1}));
}

TEST(Dtc, ChainCountsPlies) {
  // 0 -> 1 -> 2 -> exit(+1).  Values 1, -1, 1; conversions 3, 2, 1.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {2}, {}}, {{}, {}, {Exit{1, Exit::kTerminal, 0}}});
  EXPECT_EQ(solve_dtc(level), (std::vector<Dtc>{3, 2, 1}));
}

TEST(Dtc, LoserDelaysAlongTheLongestOptimalBranch) {
  // Node 0 (value -1) may move to node 1 or node 3, both value +1; node 1
  // exits immediately, node 3 forces a longer line 3 -> 4 -> exit.
  // 4: exit +1 (dtc 1); 3 -> 4: value -1?? careful: we need both succs of
  // node 0 worth +1:
  //   1: exit +1            -> v=+1, dtc 1
  //   3 -> 4, 4 -> 5, 5: exit +1 -> v(5)=+1 dtc 1, v(4)=-1 dtc 2,
  //                                 v(3)=+1 dtc 3
  // 0 -> {1, 3}: options -1 and -1 -> v(0) = -1, delay: dtc = 1+3 = 4.
  const GraphLevel level = GraphLevel::custom(
      0, {{1, 3}, {}, {}, {4}, {5}, {}},
      {{},
       {Exit{1, Exit::kTerminal, 0}},
       {Exit{0, Exit::kTerminal, 0}},  // filler node 2 (unused, draw-ish)
       {},
       {},
       {Exit{1, Exit::kTerminal, 0}}});
  const auto dtc = solve_dtc(level);
  EXPECT_EQ(dtc[1], 1u);
  EXPECT_EQ(dtc[5], 1u);
  EXPECT_EQ(dtc[4], 2u);
  EXPECT_EQ(dtc[3], 3u);
  EXPECT_EQ(dtc[0], 4u);
}

TEST(Dtc, WinnerTakesTheShortestOptimalBranch) {
  // Node 0 (value +1) chooses between succ 1 (v=-1, dtc 2) and an
  // immediate exit worth +1: converting now wins.
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {2}, {}},
      {{Exit{1, Exit::kTerminal, 0}},
       {},
       {Exit{1, Exit::kTerminal, 0}}});
  const auto dtc = solve_dtc(level);
  EXPECT_EQ(dtc[0], 1u);
}

TEST(Dtc, DrawsNeverConvert) {
  const GraphLevel level = GraphLevel::custom(
      0, {{1}, {0}},
      {{Exit{-5, Exit::kTerminal, 0}}, {Exit{-5, Exit::kTerminal, 0}}});
  const auto dtc = solve_dtc(level);
  EXPECT_EQ(dtc[0], kNoConversion);
  EXPECT_EQ(dtc[1], kNoConversion);
}

// Reference implementation: Bellman iteration on the dtc equations until
// fixpoint (exponentially slower, elementary).
std::vector<Dtc> dtc_bellman(const GraphLevel& level,
                             const std::vector<db::Value>& values) {
  const std::uint64_t size = level.size();
  std::vector<Dtc> dtc(size, kNoConversion);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint64_t p = 0; p < size; ++p) {
      const db::Value v = values[p];
      if (v == 0) continue;
      std::uint64_t best = v > 0 ? kNoConversion : 0;
      bool all_known = true;
      for (const Exit& exit : level.exits_of(p)) {
        if (game::exit_value(exit, no_lower) != v) continue;
        best = v > 0 ? std::min<std::uint64_t>(best, 1)
                     : std::max<std::uint64_t>(best, 1);
      }
      for (const std::uint32_t s : level.succs_of(p)) {
        if (static_cast<db::Value>(-values[s]) != v) continue;
        if (dtc[s] == kNoConversion) {
          all_known = false;
          continue;
        }
        const std::uint64_t cost = static_cast<std::uint64_t>(dtc[s]) + 1;
        best = v > 0 ? std::min(best, cost) : std::max(best, cost);
      }
      // min side may settle early; max side needs every branch known.
      const bool settled = v > 0 ? best != kNoConversion
                                 : (all_known && best != 0);
      if (settled && dtc[p] > best) {
        dtc[p] = static_cast<Dtc>(best);
        changed = true;
      }
    }
  }
  return dtc;
}

class DtcRandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtcRandomGraphs, MatchesBellmanReference) {
  game::GraphGameConfig config;
  config.levels = 1;
  config.size0 = 40;
  config.edge_mean = 2.0;
  config.terminal_chance = 0.5;
  config.reward_range = 2;
  config.seed = GetParam();
  const game::GraphGame graph(config);
  const GraphLevel& level = graph.level(0);
  const SweepResult result = solve_level(level, no_lower);
  EXPECT_EQ(compute_dtc(level, no_lower, result.values),
            dtc_bellman(level, result.values));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtcRandomGraphs,
                         ::testing::Range<std::uint64_t>(700, 740));

// ---------------------------------------------------------------------
// Awari: dtc-optimal play converts in exactly dtc plies.

TEST(AwariDtc, PlayoutMatchesPredictedDepth) {
  const int max_level = 6;
  const db::Database database =
      ra::build_database(game::AwariFamily{}, max_level);
  serve::DatabaseSource source(database);
  const DtcTables tables = compute_awari_dtc(source);

  for (int level = 1; level <= max_level; ++level) {
    idx::for_each_board(level, [&](const game::Board& start, idx::Index i) {
      const db::Value v = database.value(level, i);
      if (v == 0) return;
      const Dtc predicted =
          tables.levels[static_cast<std::size_t>(level)][i];
      ASSERT_NE(predicted, kNoConversion);

      // Both sides play value-optimal, depth-optimal moves; conversion
      // (a capture or the game ending) must occur at exactly ply
      // `predicted`.
      game::Board board = start;
      for (Dtc ply = 1;; ++ply) {
        ASSERT_LE(ply, predicted);
        if (game::is_terminal(board)) {
          ASSERT_EQ(ply, predicted) << game::board_to_string(start);
          break;
        }
        const auto evals =
            evaluate_moves_shortest(source, tables, board);
        const auto& move = evals.front();
        if (move.captured > 0) {
          ASSERT_EQ(ply, predicted) << game::board_to_string(start);
          break;
        }
        board = move.after;
      }
    });
  }
}

TEST(AwariDtc, ShortestOracleNeverSacrificesValue) {
  const db::Database database = ra::build_database(game::AwariFamily{}, 6);
  serve::DatabaseSource source(database);
  const DtcTables tables = compute_awari_dtc(source);
  idx::for_each_board(6, [&](const game::Board& board, idx::Index i) {
    if (game::is_terminal(board)) return;
    const auto plain = evaluate_moves(source, board);
    const auto shortest = evaluate_moves_shortest(source, tables, board);
    ASSERT_EQ(shortest.front().value, plain.front().value);
    ASSERT_EQ(shortest.front().value, database.value(6, i));
  });
}

}  // namespace
}  // namespace retra::ra

// Randomised deep-playout fuzzing of both rule sets.
//
// Thousands of random games are played to the end (or a ply cap), with
// every invariant checked at every ply: stone conservation, legality of
// reported moves, normalisation (origin empty after the move), row
// bounds, terminal classification, and — against the databases — that no
// reachable position ever contradicts its solved value's Bellman
// equation.
#include <gtest/gtest.h>

#include "retra/game/awari.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/game/kalah.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/support/rng.hpp"

namespace retra::game {
namespace {

Board random_board(int stones, support::Xoshiro256& rng) {
  Board board{};
  for (int s = 0; s < stones; ++s) {
    const auto pit = static_cast<std::size_t>(rng.below(kPits));
    board[pit] = static_cast<std::uint8_t>(board[pit] + 1);
  }
  return board;
}

TEST(AwariFuzz, RandomPlayoutsKeepInvariants) {
  support::Xoshiro256 rng(11);
  for (int trial = 0; trial < 400; ++trial) {
    const int stones = 1 + static_cast<int>(rng.below(24));
    Board board = random_board(stones, rng);
    int on_board = stones;
    for (int ply = 0; ply < 120; ++ply) {
      const MoveList moves = legal_moves(board);
      if (moves.count == 0) {
        ASSERT_TRUE(is_terminal(board));
        ASSERT_EQ(std::abs(terminal_reward(board)), on_board);
        break;
      }
      ASSERT_FALSE(is_terminal(board));
      const auto& move = moves.items[rng.below(static_cast<std::uint64_t>(moves.count))];
      // Conservation and normalisation.
      ASSERT_EQ(idx::stones_on(move.after) + move.captured, on_board);
      ASSERT_EQ(move.after[static_cast<std::size_t>((move.pit + 6) % kPits)],
                0);
      ASSERT_GE(move.captured, 0);
      // A capture never strips the opponent bare (grand slam forfeits);
      // in the rotated frame the *mover's* new row is the old opponent's.
      if (move.captured > 0) {
        int new_mover_row = 0;
        for (std::size_t i = 0; i < 6; ++i) new_mover_row += move.after[i];
        ASSERT_GT(new_mover_row, 0);
      }
      on_board -= move.captured;
      board = move.after;
    }
  }
}

TEST(KalahFuzz, RandomPlayoutsKeepInvariants) {
  support::Xoshiro256 rng(13);
  for (int trial = 0; trial < 400; ++trial) {
    const int stones = 1 + static_cast<int>(rng.below(24));
    Board board = random_board(stones, rng);
    int on_board = stones;
    for (int ply = 0; ply < 200; ++ply) {
      if (kalah::is_terminal(board)) {
        ASSERT_EQ(kalah::terminal_reward(board), -on_board);
        break;
      }
      const kalah::MoveList moves = kalah::legal_moves(board);
      ASSERT_GT(moves.count, 0);
      const auto& move = moves.items[rng.below(static_cast<std::uint64_t>(moves.count))];
      ASSERT_EQ(idx::stones_on(move.after) + move.banked, on_board);
      ASSERT_GE(move.banked, 0);
      if (move.extra_turn) {
        // Extra turns always bank the landing stone.
        ASSERT_GE(move.banked, 1);
      }
      on_board -= move.banked;
      board = move.after;
    }
  }
}

TEST(AwariFuzz, PlayoutsNeverContradictTheDatabase) {
  // Random playouts through solved levels: at every reachable position
  // the realised (capture, successor-value) pair must satisfy
  // v(p) >= captured − v(after), with equality for some legal move.
  const int max_level = 7;
  const db::Database database =
      ra::build_database(AwariFamily{}, max_level);
  support::Xoshiro256 rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    Board board =
        random_board(1 + static_cast<int>(rng.below(max_level)), rng);
    for (int ply = 0; ply < 60; ++ply) {
      if (is_terminal(board)) break;
      const int level = idx::stones_on(board);
      const db::Value v = database.value(level, idx::rank(board));
      db::Value best = INT16_MIN;
      const MoveList moves = legal_moves(board);
      for (const auto& move : moves) {
        const db::Value option = static_cast<db::Value>(
            move.captured -
            database.value(idx::stones_on(move.after),
                           idx::rank(move.after)));
        ASSERT_LE(option, v);
        best = std::max(best, option);
      }
      ASSERT_EQ(best, v);
      board = moves.items[rng.below(static_cast<std::uint64_t>(moves.count))].after;
    }
  }
}

TEST(AwariFuzz, MoveListMatchesApplyMove) {
  // legal_moves must be exactly the pits whose apply_move is legal, with
  // identical outcomes.
  support::Xoshiro256 rng(19);
  for (int trial = 0; trial < 2000; ++trial) {
    const Board board =
        random_board(1 + static_cast<int>(rng.below(30)), rng);
    const MoveList moves = legal_moves(board);
    int found = 0;
    for (int pit = 0; pit < 6; ++pit) {
      const AppliedMove m = apply_move(board, pit);
      if (!m.legal) continue;
      ASSERT_LT(found, moves.count);
      ASSERT_EQ(moves.items[found].pit, pit);
      ASSERT_EQ(moves.items[found].captured, m.captured);
      ASSERT_EQ(moves.items[found].after, m.after);
      ++found;
    }
    ASSERT_EQ(found, moves.count);
  }
}

}  // namespace
}  // namespace retra::game

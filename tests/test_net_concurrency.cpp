// Concurrency tests for the retra-net-v1 server: many client threads,
// pipelined batches, a resident-byte budget squeezed far below the
// database, and admission control actually shedding.
//
// The invariants under fire:
//   * exactly-once — every pipelined request gets exactly one response,
//     matched by request_id, no losses, no cross-wiring between the
//     connections the workers coalesce across;
//   * correctness under thrash — every answered value equals the
//     in-memory oracle, even while the service faults and evicts
//     continuously and the hot tier promotes concurrently;
//   * typed shedding — an over-tight fault-debt ceiling refuses with
//     kBusy, never wedges, and the connection keeps working;
//   * accounting — after the dust settles, admitted == answered.
//
// CI runs this binary under TSan (tsan_net job): the Store's
// shared-lock hot path and the worker/IO handoffs must be clean.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "retra/game/awari_level.hpp"
#include "retra/net/client.hpp"
#include "retra/net/server.hpp"
#include "retra/ra/builder.hpp"
#include "retra/support/rng.hpp"

namespace retra::net {
namespace {

constexpr int kMaxLevel = 6;

const db::Database& solved() {
  static const db::Database database =
      ra::build_database(game::AwariFamily{}, kMaxLevel);
  return database;
}

/// Per-process scratch fixture, removed at exit.  ctest runs each case as
/// its own process; a fixed shared path races one process's rewrite
/// against a sibling's read.
struct ScratchDb {
  ScratchDb() {
    path = (std::filesystem::temp_directory_path() /
            ("retra_test_net_concurrency." + std::to_string(::getpid()) +
             ".db"))
               .string();
    db::save(solved(), path, db::Format{.version = 2});
  }
  ~ScratchDb() { std::remove(path.c_str()); }
  std::string path;
};

const std::string& fixture_path() {
  static const ScratchDb fixture;
  return fixture.path;
}

TEST(NetConcurrency, ManyThreadsPipelinedUnderTinyBudgetStayExact) {
  ServerConfig config;
  config.workers = 4;
  config.budget_bytes = 1024;  // a sliver: constant fault + evict
  config.hot_bytes = 2048;     // hot tier churns too
  config.max_queue_depth = 64;
  // Debt ceiling small enough that bursts of cold-level queries shed.
  config.shed_fault_debt_bytes = 8 * 1024;
  auto opened = Server::open(fixture_path(), config);
  ASSERT_TRUE(opened.ok) << opened.error;
  Server& server = *opened.server;

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  constexpr std::size_t kPipeline = 32;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto connected = Client::connect("127.0.0.1", server.port());
      if (!connected.ok) {
        failures.fetch_add(1);
        return;
      }
      Client& client = *connected.client;
      support::Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
      std::vector<idx::Index> indices(kPipeline);
      std::vector<db::Value> values(kPipeline);
      std::vector<ErrorCode> codes;
      for (int round = 0; round < kRounds; ++round) {
        const int level =
            1 + static_cast<int>(rng.below(kMaxLevel));
        for (auto& index : indices) {
          index = rng.below(solved().level(level).size());
        }
        const auto status = client.pipelined_queries(
            static_cast<std::uint32_t>(level), indices, values, &codes);
        if (!status.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (std::size_t i = 0; i < kPipeline; ++i) {
          if (codes[i] == ErrorCode::kNone) {
            // Exactly-once and correctly wired: the value under this
            // request_id is the value of the index sent under it.
            if (values[i] != solved().value(level, indices[i])) {
              failures.fetch_add(1);
              return;
            }
            answered.fetch_add(1);
          } else if (codes[i] == ErrorCode::kBusy) {
            shed.fetch_add(1);
          } else {
            failures.fetch_add(1);  // no other error is legitimate here
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answered.load(), 0u);

  server.stop();
  const Server::Stats stats = server.stats();
  // Client-side and server-side books agree exactly.
  EXPECT_EQ(stats.queries, answered.load());
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kThreads));
  // Everything admitted was answered: no request lost in shutdown.
  EXPECT_EQ(stats.requests, stats.queries + stats.batch_queries +
                                stats.pings + stats.stats_ops);
}

TEST(NetConcurrency, OverTightDebtCeilingShedsTypedBusy) {
  ServerConfig config;
  config.workers = 2;
  config.budget_bytes = 1024;
  config.hot_bytes = 0;  // no hot tier: every lookup carries fault debt
  // A ceiling below any level's payload: every cold query sheds.
  config.shed_fault_debt_bytes = 1;
  auto opened = Server::open(fixture_path(), config);
  ASSERT_TRUE(opened.ok) << opened.error;
  auto connected = Client::connect("127.0.0.1", opened.server->port());
  ASSERT_TRUE(connected.ok);
  Client& client = *connected.client;

  db::Value out = 0;
  const auto status = client.query(kMaxLevel, 0, out);
  EXPECT_EQ(status.code, ErrorCode::kBusy);
  // The shed is an answer, not a disconnect: PING still round-trips and
  // the books record the shed.
  EXPECT_TRUE(client.ping().ok());
  EXPECT_GE(opened.server->stats().shed, 1u);
  EXPECT_GE(opened.server->stats().errors, 1u);
}

TEST(NetConcurrency, BatchSweepsRaceSinglesAcrossConnections) {
  // Whole-level batch sweeps on some threads, random singles on others:
  // the coalescing workers see mixed gulps; everything must stay exact.
  ServerConfig config;
  config.workers = 4;
  config.budget_bytes = 2048;
  config.hot_bytes = 4096;
  auto opened = Server::open(fixture_path(), config);
  ASSERT_TRUE(opened.ok) << opened.error;
  Server& server = *opened.server;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      auto connected = Client::connect("127.0.0.1", server.port());
      if (!connected.ok) {
        failures.fetch_add(1);
        return;
      }
      auto adapted = ClientValueSource::open(*connected.client);
      if (!adapted.ok) {
        failures.fetch_add(1);
        return;
      }
      for (int level = 1; level <= kMaxLevel; ++level) {
        if (adapted.source->level_values(level) != solved().level(level)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      auto connected = Client::connect("127.0.0.1", server.port());
      if (!connected.ok) {
        failures.fetch_add(1);
        return;
      }
      support::Xoshiro256 rng(500 + static_cast<std::uint64_t>(t));
      for (int q = 0; q < 400; ++q) {
        const int level = 1 + static_cast<int>(rng.below(kMaxLevel));
        const idx::Index index = rng.below(solved().level(level).size());
        db::Value out = 0;
        Client::Status status;
        do {  // kBusy is a legitimate shed under the sweeps' fault debt
          status = connected.client->query(
              static_cast<std::uint32_t>(level), index, out);
        } while (status.code == ErrorCode::kBusy);
        if (!status.ok() || out != solved().value(level, index)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace retra::net
